"""Unit tests for the columnar fleet store, view, and host handles."""

import numpy as np
import pytest

from repro.errors import CloudError
from repro.fleet import FleetStore, FleetView, HostHandle


def make_store(n=10, capacity=160.0, **kwargs):
    return FleetStore([f"h{i}" for i in range(n)], capacity_slots=capacity, **kwargs)


class TestIdentity:
    def test_index_mapping_is_positional(self):
        store = make_store(5)
        assert [store.index_of(f"h{i}") for i in range(5)] == list(range(5))
        assert [store.host_id(i) for i in range(5)] == [f"h{i}" for i in range(5)]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(CloudError):
            FleetStore(["a", "b", "a"])

    def test_unknown_host_raises(self):
        with pytest.raises(CloudError):
            make_store().index_of("nope")

    def test_indices_of_preserves_order(self):
        store = make_store(6)
        idx = store.indices_of(["h4", "h0", "h2"])
        assert idx.tolist() == [4, 0, 2]
        assert store.ids_of(idx) == ("h4", "h0", "h2")

    def test_capacity_scalar_broadcasts(self):
        store = make_store(4, capacity=42.0)
        assert store.capacity_slots.tolist() == [42.0] * 4

    def test_capacity_sequence_kept(self):
        store = FleetStore(["a", "b"], capacity_slots=[1.0, 2.0])
        assert store.capacity_slots.tolist() == [1.0, 2.0]

    def test_mask_for_ids(self):
        store = make_store(4)
        assert store.mask_for_ids(["h1", "h3"]).tolist() == [
            False, True, False, True,
        ]


class TestPoolAndRotation:
    def test_set_pool_orders(self):
        store = make_store(6)
        store.set_pool(np.array([4, 1, 5]))
        assert store.pool_order.tolist() == [4, 1, 5]
        # Rotated-out hosts are the complement in ascending index order.
        assert store.rotated_order.tolist() == [0, 2, 3]
        assert store.in_pool.tolist() == [False, True, False, False, True, True]

    def test_rotate_swaps_and_preserves_order(self):
        store = make_store(6)
        store.set_pool(np.array([4, 1, 5]))
        # Swap pool position 1 (host 1) with rotated position 2 (host 3).
        store.rotate(np.array([1]), np.array([2]))
        assert store.pool_order.tolist() == [4, 5, 3]
        assert store.rotated_order.tolist() == [0, 2, 1]
        assert store.in_pool.sum() == 3

    def test_pool_version_bumps_on_change(self):
        store = make_store(6)
        v0 = store.pool_version
        store.set_pool(np.array([0, 1, 2]))
        v1 = store.pool_version
        store.rotate(np.array([0]), np.array([0]))
        assert v0 < v1 < store.pool_version


class TestShards:
    def test_assignment_follows_pool_order(self):
        store = make_store(8)
        store.set_pool(np.array([7, 2, 5, 0]))
        store.assign_shards(shard_size=2, n_shards=2)
        assert store.n_shards == 2
        assert store.shard_members(0).tolist() == [7, 2]
        assert store.shard_members(1).tolist() == [5, 0]
        assert store.shard_index[7] == 0 and store.shard_index[0] == 1
        assert store.shard_index[1] == -1

    def test_out_of_range_raises(self):
        store = make_store(4)
        store.set_pool(np.array([0, 1]))
        store.assign_shards(shard_size=2, n_shards=1)
        with pytest.raises(CloudError):
            store.shard_members(1)

    def test_membership_pinned_across_rotation(self):
        store = make_store(6)
        store.set_pool(np.array([0, 1, 2, 3]))
        store.assign_shards(shard_size=2, n_shards=2)
        before = [store.shard_members(i).tolist() for i in range(2)]
        store.rotate(np.array([0]), np.array([0]))
        after = [store.shard_members(i).tolist() for i in range(2)]
        assert before == after


class TestLoadAndServiceCounts:
    def test_add_and_release(self):
        store = make_store(2)
        store.add_load(1, 3.0)
        store.add_load(1, 2.0)
        store.release_load(1, 4.0)
        assert store.load_slots.tolist() == [0.0, 1.0]

    def test_release_clamps_at_zero(self):
        store = make_store(1)
        store.add_load(0, 1.0)
        store.release_load(0, 5.0)
        assert store.load_slots[0] == 0.0

    def test_service_counts_lazy(self):
        store = make_store(3)
        assert store.peek_service_counts("svc") is None
        counts = store.service_counts("svc")
        assert counts.tolist() == [0, 0, 0]
        assert store.peek_service_counts("svc") is counts


class TestSnapshotRestore:
    def test_round_trips_every_column(self):
        store = make_store(6)
        store.set_pool(np.array([4, 1, 5]))
        store.assign_shards(shard_size=1, n_shards=2)
        store.add_load(4, 7.5)
        store.service_counts("svc")[4] = 3
        snap = store.snapshot()

        store.rotate(np.array([0]), np.array([0]))
        store.add_load(0, 2.0)
        store.release_load(4, 7.5)
        store.capacity_slots[2] = 9.0
        store.service_counts("svc")[4] = 0
        store.service_counts("other")[1] = 1

        store.restore(snap)
        assert store.pool_order.tolist() == [4, 1, 5]
        assert store.rotated_order.tolist() == [0, 2, 3]
        assert store.in_pool.tolist() == [False, True, False, False, True, True]
        assert store.load_slots.tolist() == [0, 0, 0, 0, 7.5, 0]
        assert store.capacity_slots[2] == 160.0
        assert store.service_counts("svc").tolist() == [0, 0, 0, 0, 3, 0]
        # Columns created after the snapshot are dropped.
        assert store.peek_service_counts("other") is None

    def test_restore_keeps_array_references_valid(self):
        store = make_store(3)
        load_ref = store.load_slots
        counts_ref = store.service_counts("svc")
        snap = store.snapshot()
        store.add_load(0, 1.0)
        counts_ref[2] = 5
        store.restore(snap)
        assert store.load_slots is load_ref
        assert store.service_counts("svc") is counts_ref
        assert load_ref[0] == 0.0 and counts_ref[2] == 0

    def test_snapshot_is_isolated_from_later_mutation(self):
        store = make_store(2)
        snap = store.snapshot()
        store.add_load(0, 9.0)
        assert snap.load_slots[0] == 0.0


class TestHostHandle:
    def test_scalar_reads(self):
        store = make_store(3, capacity=10.0)
        store.set_pool(np.array([1]))
        store.add_load(1, 4.0)
        handle = HostHandle(store, 1)
        assert handle.host_id == "h1"
        assert handle.load_slots == 4.0
        assert handle.capacity_slots == 10.0
        assert handle.free_slots == 6.0
        assert handle.in_pool
        assert handle.shard == -1

    def test_service_count_mutation(self):
        store = make_store(2)
        handle = HostHandle(store, 0)
        handle.inc_service("svc")
        handle.inc_service("svc")
        handle.dec_service("svc")
        assert handle.service_count("svc") == 1
        handle.dec_service("svc")
        handle.dec_service("svc")  # never goes negative
        assert store.service_counts("svc")[0] == 0

    def test_dec_on_unknown_service_is_noop(self):
        store = make_store(1)
        HostHandle(store, 0).dec_service("never-seen")
        assert store.peek_service_counts("never-seen") is None


class TestFleetView:
    def test_pool_ids_cached_until_rotation(self):
        store = make_store(6)
        view = FleetView(store)
        store.set_pool(np.array([4, 1, 5]))
        first = view.serving_pool_ids()
        assert first == ("h4", "h1", "h5")
        assert view.serving_pool_ids() is first  # cache hit, same tuple
        store.rotate(np.array([0]), np.array([0]))
        assert view.serving_pool_ids() == ("h1", "h5", "h0")

    def test_shard_ids_cached(self):
        store = make_store(4)
        view = FleetView(store)
        store.set_pool(np.array([3, 0, 2, 1]))
        store.assign_shards(shard_size=2, n_shards=2)
        assert view.shard_ids(0) == ("h3", "h0")
        assert view.shard_ids(1) is view.shard_ids(1)

    def test_load_of_and_masks(self):
        store = make_store(3)
        view = FleetView(store)
        store.add_load(2, 1.5)
        assert view.load_of("h2") == 1.5
        assert view.mask_for_ids(["h0"]).tolist() == [True, False, False]
        store.set_pool(np.array([1]))
        assert view.pool_mask().tolist() == [False, True, False]
