"""Fan experiment cells out across worker processes, with cell caching.

:func:`run_cells` is the shared entry point every multi-cell experiment
driver routes through.  The default (``parallelism=0``) executes cells
serially in-process — exactly the behavior the drivers had before the
runner existed, preserving determinism and debuggability (breakpoints,
tracebacks, profilers all see one process).  With ``parallelism=N`` the
uncached cells are submitted to a ``ProcessPoolExecutor`` of ``N`` workers;
because every cell derives all randomness from its own seed, pooled and
serial runs produce byte-identical results.

Failure discipline: a raising cell never takes its siblings down.  Each
cell's exception is captured as a structured :class:`CellResult` error,
completed cells are written to the cache *as they finish* (not in a batch
at the end), failed cells are retried up to ``RunnerConfig.max_retries``
times, and only then does the run either raise a
:class:`~repro.errors.CellExecutionError` naming the failed cells
(default) or — with ``isolate_errors=True`` — return the error results
in-line for the caller to triage.

An attached :class:`~repro.faults.FaultPlan` injects deterministic cell
failures (and, through the ambient fault context, launch/CTest faults
inside the cell's own simulation).  Fault-injected runs bypass the cache
entirely: their values are not clean results and must never collide with
a fault-free run's cache keys.  Platform-profile runs, by contrast, *are*
cached — the profile's canonical form joins the cell cache key
(:func:`~repro.runner.cellspec.cache_key`), so ``--platform`` values are
content-addressed apart from baseline entries.

Cells that declare an :class:`~repro.runner.worldcache.EnvSpec` execute
with the process's warm-world cache armed: their ``default_env`` call
checkpoints the built world once and forks it for every sibling cell
that needs the same one (:mod:`repro.runner.worldcache`).  Workers
persist across a pool's cells, so each worker's LRU warms once per
distinct world, not once per cell.

Per-cell timing, cache-hit, retry, and error counters accumulate on the
:class:`RunnerConfig`'s :class:`RunStats`, so callers (the CLI, the
benchmark harness) can report the achieved speedup and observed faults.
"""

from __future__ import annotations

import contextlib
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.cloud.platform import PlatformProfile, platform_context
from repro.errors import CellExecutionError
from repro.faults import FaultPlan, fault_context
from repro.runner.cache import CellCache
from repro.runner.cellspec import CellResult, CellSpec
from repro.runner.worldcache import process_world_cache, world_cache_context
from repro.telemetry import MetricSet, Telemetry, current_telemetry, telemetry_context


class RunStats:
    """Aggregated counters for one runner's cell executions.

    Backed by a telemetry :class:`~repro.telemetry.MetricSet` rather than
    plain fields, so per-call deltas are available via
    :meth:`snapshot` / :meth:`since` and repeated ``run_cells`` calls on
    one config accumulate without double-counting.
    """

    _COUNTERS = (
        "cells",
        "cache_hits",
        "cell_retries",
        "cell_errors",
        "computed_seconds",
        "saved_seconds",
        "wall_seconds",
        "world_hits",
        "world_misses",
        "world_evictions",
        "world_fork_seconds",
        "world_build_seconds",
    )

    def __init__(self, **values: float) -> None:
        self.metrics = MetricSet()
        for name, value in values.items():
            if name not in (*self._COUNTERS, "parallelism"):
                raise TypeError(f"RunStats has no counter {name!r}")
            setattr(self, name, value)

    def _get(self, name: str) -> float:
        return self.metrics.counters.get(name, 0)

    def _set(self, name: str, value: float) -> None:
        self.metrics.counters[name] = value

    cells = property(
        lambda self: int(self._get("cells")),
        lambda self, v: self._set("cells", v),
    )
    cache_hits = property(
        lambda self: int(self._get("cache_hits")),
        lambda self, v: self._set("cache_hits", v),
    )
    cell_retries = property(
        lambda self: int(self._get("cell_retries")),
        lambda self, v: self._set("cell_retries", v),
    )
    cell_errors = property(
        lambda self: int(self._get("cell_errors")),
        lambda self, v: self._set("cell_errors", v),
    )
    computed_seconds = property(
        lambda self: float(self._get("computed_seconds")),
        lambda self, v: self._set("computed_seconds", v),
    )
    saved_seconds = property(
        lambda self: float(self._get("saved_seconds")),
        lambda self, v: self._set("saved_seconds", v),
    )
    wall_seconds = property(
        lambda self: float(self._get("wall_seconds")),
        lambda self, v: self._set("wall_seconds", v),
    )
    world_hits = property(
        lambda self: int(self._get("world_hits")),
        lambda self, v: self._set("world_hits", v),
    )
    world_misses = property(
        lambda self: int(self._get("world_misses")),
        lambda self, v: self._set("world_misses", v),
    )
    world_evictions = property(
        lambda self: int(self._get("world_evictions")),
        lambda self, v: self._set("world_evictions", v),
    )
    world_fork_seconds = property(
        lambda self: float(self._get("world_fork_seconds")),
        lambda self, v: self._set("world_fork_seconds", v),
    )
    world_build_seconds = property(
        lambda self: float(self._get("world_build_seconds")),
        lambda self, v: self._set("world_build_seconds", v),
    )

    @property
    def parallelism(self) -> int:
        return int(self.metrics.gauges.get("parallelism", 0))

    @parallelism.setter
    def parallelism(self, value: int) -> None:
        self.metrics.gauge("parallelism", value)

    def snapshot(self) -> dict[str, float]:
        """Freeze current counter totals (pair with :meth:`since`)."""
        return self.metrics.snapshot()

    def since(self, before: dict[str, float]) -> dict[str, float]:
        """Counter growth since a :meth:`snapshot` (one run's deltas)."""
        return self.metrics.since(before)

    @property
    def hit_rate(self) -> float:
        """Fraction of cells restored from the cache."""
        return self.cache_hits / self.cells if self.cells else 0.0

    def summary(self) -> str:
        """One-line human-readable report of the counters."""
        text = (
            f"{self.cells} cells, {self.cache_hits} cache hits "
            f"({100.0 * self.hit_rate:.0f}%), computed "
            f"{self.computed_seconds:.1f}s, saved ~{self.saved_seconds:.1f}s, "
            f"wall {self.wall_seconds:.1f}s, jobs {self.parallelism}"
        )
        if self.cell_errors or self.cell_retries:
            text += (
                f", {self.cell_errors} cell errors, "
                f"{self.cell_retries} cell retries"
            )
        if self.world_hits or self.world_misses:
            text += (
                f", worldcache {self.world_hits} forks/"
                f"{self.world_misses} builds/"
                f"{self.world_evictions} evictions "
                f"(fork {self.world_fork_seconds:.1f}s, "
                f"build {self.world_build_seconds:.1f}s)"
            )
        return text


@dataclass
class RunnerConfig:
    """How an experiment's cells should be executed.

    The default is the conservative library behavior: serial, in-process,
    no cache — indistinguishable from calling the cell functions directly.
    The CLI and benchmark harness opt into workers and caching explicitly.

    Attributes
    ----------
    parallelism:
        0 runs cells serially in-process; ``N >= 1`` fans uncached cells
        out to ``N`` worker processes.
    cache_read:
        Restore completed cells from the on-disk cache.
    cache_write:
        Store newly computed cells.  ``--no-cache`` maps to
        ``cache_read=False, cache_write=True``: bypass reads, still write.
    cache_dir:
        Cache location override (default: ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro-runner``).
    fault_plan:
        Optional deterministic fault schedule (``--faults`` on the CLI):
        injects cell failures and is activated as the ambient plan around
        each cell execution.  An *enabled* plan disables the cache for
        the run — faulted values must never poison clean cache entries.
    max_retries:
        How many times a failed cell is re-executed before its error is
        kept (0 disables retrying).  The fault plan keys its decision on
        the attempt number, so retries deterministically escape injected
        transients.
    isolate_errors:
        When True, cells that still fail after retries are returned as
        structured error results; when False (default), ``run_cells``
        raises :class:`~repro.errors.CellExecutionError` naming them —
        after every completed sibling has been computed and cached.
    platform:
        Optional :class:`~repro.cloud.platform.PlatformProfile`
        (``--platform`` on the CLI), activated as the ambient profile
        around each cell execution — carried explicitly, like the fault
        plan, because contextvars do not survive into pool workers.  The
        profile's canonical form joins every cell cache key, so platform
        runs share the cache with baseline runs without colliding.
    world_cache:
        Arm the per-process warm-world cache around cells that declare
        an :class:`~repro.runner.worldcache.EnvSpec` (default).  False —
        ``--no-world-cache`` on the CLI — builds every cell's world
        fresh; ``$REPRO_WORLD_CACHE_SIZE=0`` disables it process-wide.
    stats:
        Mutable accumulator shared across every ``run_cells`` call made
        with this config.
    """

    parallelism: int = 0
    cache_read: bool = False
    cache_write: bool = False
    cache_dir: str | Path | None = None
    fault_plan: FaultPlan | None = None
    max_retries: int = 1
    isolate_errors: bool = False
    platform: PlatformProfile | None = None
    world_cache: bool = True
    stats: RunStats = field(default_factory=RunStats)

    @classmethod
    def from_cli(
        cls, jobs: int = 0, no_cache: bool = False,
        cache_dir: str | Path | None = None,
        fault_plan: FaultPlan | None = None,
        max_retries: int | None = None,
        platform: PlatformProfile | None = None,
        world_cache: bool = True,
    ) -> "RunnerConfig":
        """The CLI mapping: caching on by default, ``--no-cache`` skips reads."""
        return cls(
            parallelism=jobs,
            cache_read=not no_cache,
            cache_write=True,
            cache_dir=cache_dir,
            fault_plan=fault_plan,
            max_retries=max_retries if max_retries is not None else 1,
            platform=platform,
            world_cache=world_cache,
        )


def _execute_cell(
    spec: CellSpec,
    fault_plan: FaultPlan | None = None,
    attempt: int = 0,
    collect_trace: bool = False,
    platform: PlatformProfile | None = None,
    world_cache: bool = True,
) -> CellResult:
    """Run one cell and time it (top-level so worker processes can load it).

    Exceptions from the cell function are captured into the result's
    ``error`` field rather than propagated, so one bad cell cannot abort
    a whole pooled run.  The fault plan (if any) is consulted for an
    injected failure and activated as the ambient plan so the cell's own
    simulation picks up launch/CTest faults.  A platform profile (if any)
    is likewise activated as the ambient profile, so ``default_env`` calls
    inside the cell inherit it.

    A cell that declares an :class:`~repro.runner.worldcache.EnvSpec`
    additionally runs with the process's warm-world cache armed (unless
    ``world_cache`` is off), and the cache's counter deltas travel back
    on the result's ``world``.

    With ``collect_trace`` the cell runs under a *fresh* child
    :class:`~repro.telemetry.Telemetry` — in the parent process and in
    workers alike — and the captured spans/metrics travel back on the
    result's ``trace``.  Uniform capture is what makes serial and pooled
    traces byte-identical: spans never interleave with sibling cells.
    """
    start = time.perf_counter()
    value, error = None, None
    child = Telemetry() if collect_trace else None
    scope = (
        telemetry_context(child) if child is not None else contextlib.nullcontext()
    )
    worlds = (
        process_world_cache() if (world_cache and spec.env is not None) else None
    )
    world_before = worlds.stats_snapshot() if worlds is not None else None
    world_scope = (
        world_cache_context(worlds)
        if worlds is not None
        else contextlib.nullcontext()
    )
    try:
        with scope, world_scope:
            if fault_plan is not None and fault_plan.cell_fails(spec.key(), attempt):
                raise CellExecutionError(
                    f"injected fault (attempt {attempt})"
                )
            with fault_context(fault_plan), platform_context(platform):
                value = spec.fn(spec.config, spec.seed)
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        error = f"{spec.label or spec.experiment}: {type(exc).__name__}: {exc}"
    elapsed = time.perf_counter() - start
    world = worlds.stats_since(world_before) if worlds is not None else None
    return CellResult(
        experiment=spec.experiment,
        seed=spec.seed,
        label=spec.label,
        key=spec.key(
            platform=platform,
            faults=(
                fault_plan.spec
                if fault_plan is not None and fault_plan.enabled
                else None
            ),
        ),
        value=value,
        elapsed_s=elapsed,
        error=error,
        trace=child.snapshot_trace() if child is not None else None,
        world=world or None,
    )


def run_cells(
    specs: Sequence[CellSpec], runner: RunnerConfig | None = None
) -> list[CellResult]:
    """Execute every cell, reusing cached results, in spec order.

    Cache reads and writes happen in the parent process only, so worker
    processes never contend on the cache directory; writes happen as each
    cell completes, so siblings of a failing cell are never lost.
    """
    if runner is None:
        runner = RunnerConfig()
    specs = list(specs)
    wall_start = time.perf_counter()
    stats = runner.stats
    plan = runner.fault_plan
    faulted = plan is not None and plan.enabled
    platform = runner.platform
    telemetry = current_telemetry()
    collect = telemetry.enabled
    # Fault-injected values are resilience-drill output, not clean
    # results: never read them from or write them to the shared cache.
    # Platform-shaped values, by contrast, are cached — the profile's
    # canonical form joins the key below, so they are content-addressed
    # apart from baseline entries instead of colliding with them.
    cache = (
        CellCache(runner.cache_dir)
        if (not faulted and (runner.cache_read or runner.cache_write))
        else None
    )
    fault_key = plan.spec if faulted else None

    results: list[CellResult | None] = [None] * len(specs)
    misses: list[tuple[int, CellSpec]] = []
    for index, spec in enumerate(specs):
        key = spec.key(platform=platform, faults=fault_key)
        if cache is not None and runner.cache_read:
            hit, value, stored_elapsed, stored_trace = cache.get(key)
            # An entry written by a trace-less run cannot reproduce the
            # cell's spans, and a warm trace must equal a cold one — so
            # with tracing on, such an entry is a miss (and gets rewritten
            # with its trace below).
            if hit and (not collect or stored_trace is not None):
                results[index] = CellResult(
                    experiment=spec.experiment,
                    seed=spec.seed,
                    label=spec.label,
                    key=key,
                    value=value,
                    elapsed_s=stored_elapsed,
                    cached=True,
                    trace=stored_trace if collect else None,
                )
                continue
        misses.append((index, spec))

    def absorb_superseded(result: CellResult) -> None:
        # A retried attempt's spans are discarded, but its counters (e.g.
        # injected-fault tallies) still happened: merge just the metrics
        # so totals stay exhaustive and order-independent.
        if result.trace is not None:
            telemetry.metrics.merge(MetricSet.from_state(result.trace["metrics"]))

    def finish(index: int, result: CellResult) -> None:
        results[index] = result
        if cache is not None and runner.cache_write and result.error is None:
            cache.put(result.key, result.value, result.elapsed_s, result.trace)

    if misses and runner.parallelism >= 1:
        with ProcessPoolExecutor(max_workers=runner.parallelism) as pool:
            pending = {
                pool.submit(
                    _execute_cell, spec, plan, 0, collect, platform,
                    runner.world_cache,
                ): (index, spec, 0)
                for index, spec in misses
            }
            while pending:
                done, _ = wait_futures(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index, spec, attempt = pending.pop(future)
                    result = future.result()
                    if result.error is not None and attempt < runner.max_retries:
                        stats.cell_retries += 1
                        telemetry.count("runner.cell_retries")
                        absorb_superseded(result)
                        retry = pool.submit(
                            _execute_cell, spec, plan, attempt + 1, collect,
                            platform, runner.world_cache,
                        )
                        pending[retry] = (index, spec, attempt + 1)
                    else:
                        finish(index, result)
    elif misses:
        for index, spec in misses:
            for attempt in range(runner.max_retries + 1):
                result = _execute_cell(
                    spec, plan, attempt, collect, platform, runner.world_cache
                )
                if result.error is None or attempt == runner.max_retries:
                    break
                stats.cell_retries += 1
                telemetry.count("runner.cell_retries")
                absorb_superseded(result)
            finish(index, result)

    stats.parallelism = runner.parallelism
    stats.wall_seconds += time.perf_counter() - wall_start
    failed: list[CellResult] = []
    for result in results:
        stats.cells += 1
        telemetry.count("runner.cells")
        if result.cached:
            stats.cache_hits += 1
            stats.saved_seconds += result.elapsed_s
            telemetry.count("runner.cache_hits")
        else:
            stats.computed_seconds += result.elapsed_s
            telemetry.observe("runner.cell_seconds", result.elapsed_s)
        if result.world:
            stats.world_hits += int(result.world.get("worldcache.hits", 0))
            stats.world_misses += int(result.world.get("worldcache.misses", 0))
            stats.world_evictions += int(
                result.world.get("worldcache.evictions", 0)
            )
            stats.world_fork_seconds += result.world.get(
                "worldcache.fork_seconds", 0.0
            )
            stats.world_build_seconds += result.world.get(
                "worldcache.build_seconds", 0.0
            )
        if result.error is not None:
            failed.append(result)
        if result.trace is not None:
            # Splice in spec order — never completion order — so pooled
            # and serial runs export identical traces.
            attrs = {
                "experiment": result.experiment,
                "label": result.label,
                "seed": result.seed,
            }
            if result.error is not None:
                attrs["error"] = result.error
            telemetry.splice(result.trace, name="cell", **attrs)
    stats.cell_errors += len(failed)
    if failed:
        telemetry.count("runner.cell_errors", len(failed))

    if failed and not runner.isolate_errors:
        labels = ", ".join(r.label or r.experiment for r in failed)
        raise CellExecutionError(
            f"{len(failed)} of {len(specs)} cells failed after "
            f"{runner.max_retries} retries [{labels}]; first error: "
            f"{failed[0].error}"
        )
    return results
