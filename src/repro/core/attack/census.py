"""Estimating the size of a FaaS cluster (paper §5.2, Fig. 12).

The attacker deploys several services from *multiple* accounts (starting
exploration from different base hosts), primes each with optimized launches,
and counts unique apparent hosts (fingerprints) cumulatively.  The growth
flattening out is the signal that most of the serving fleet has been seen.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.analysis.aggregation import FootprintAccumulator
from repro.cloud.api import FaaSClient
from repro.cloud.services import ServiceConfig
from repro.core.fingerprint import fingerprint_gen1_instances


@dataclass
class CensusResult:
    """Outcome of a cluster-size estimation campaign.

    Attributes
    ----------
    cumulative_unique:
        Cumulative number of unique apparent hosts after each launch.
    per_launch:
        Number of apparent hosts in each individual launch.
    total_unique:
        Final estimate of the cluster size.
    """

    cumulative_unique: list[int] = field(default_factory=list)
    per_launch: list[int] = field(default_factory=list)

    @property
    def total_unique(self) -> int:
        return self.cumulative_unique[-1] if self.cumulative_unique else 0

    @property
    def n_launches(self) -> int:
        return len(self.per_launch)


def estimate_cluster_size(
    clients: list[FaaSClient],
    services_per_account: int = 8,
    launches_per_service: int = 4,
    instances_per_launch: int = 800,
    interval_s: float = 10 * units.MINUTE,
    p_boot: float = 1.0,
    service_prefix: str = "census",
) -> CensusResult:
    """Run the Fig. 12 census campaign.

    Each service is launched ``launches_per_service`` times at the priming
    interval (so later launches recruit helper hosts), then disconnected;
    fingerprints from every launch are merged into the cumulative count.
    Fingerprints drift far slower than the campaign duration, so equality
    across launches is safe at a 1-second rounding precision.
    """
    result = CensusResult()
    # Batched cumulative-unique reduction; pinned equal to the historical
    # per-launch set union by the aggregation equivalence suites.
    seen = FootprintAccumulator()
    for account_idx, client in enumerate(clients):
        names = [
            client.deploy(
                ServiceConfig(
                    name=f"{service_prefix}-{account_idx}-{i}",
                    max_instances=max(100, instances_per_launch),
                )
            )
            for i in range(services_per_account)
        ]
        for name in names:
            for launch_round in range(launches_per_service):
                round_start = client.now()
                handles = client.connect(name, instances_per_launch)
                tagged = fingerprint_gen1_instances(handles, p_boot=p_boot)
                launch_unique, cumulative = seen.add_launch(
                    fp for _, fp in tagged
                )
                result.per_launch.append(launch_unique)
                result.cumulative_unique.append(cumulative)
                client.disconnect(name)
                if launch_round != launches_per_service - 1:
                    elapsed = client.now() - round_start
                    client.wait(max(0.0, interval_s - elapsed))
    return result
