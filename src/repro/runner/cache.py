"""Content-addressed on-disk cache for completed experiment cells.

Entries live under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-runner``),
one pickle file per cell, named by the cell's :func:`~repro.runner.cellspec.cache_key`.
Because the key covers the experiment id, the canonicalized configuration,
the seed, and the package version, a stored value is valid forever: the
same key can only ever map to the same deterministic simulation output.

The cache is deliberately forgiving: a corrupted, truncated, or
foreign-format entry is treated as a miss (and removed when possible), and
I/O failures while writing are swallowed — caching is an optimization,
never a correctness dependency.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path

#: Environment variable overriding the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Format tag stored in every entry; bump when the entry layout changes.
_ENTRY_FORMAT = "repro-cell-v1"


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment or the home dir."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-runner"


class CellCache:
    """A directory of pickled cell values keyed by content hash."""

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()

    def path_for(self, key: str) -> Path:
        """File path of the entry for ``key`` (two-level fan-out)."""
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> tuple[bool, object, float, dict | None]:
        """Look up a cell value.

        Returns ``(hit, value, stored_elapsed_s, trace)`` where ``trace``
        is the telemetry snapshot recorded when the cell was computed
        (``None`` for entries written without tracing).  Any read or decode
        failure — missing file, truncated pickle, foreign format, key
        mismatch — is a miss; unreadable entries are deleted best-effort.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
            if (
                not isinstance(entry, dict)
                or entry.get("format") != _ENTRY_FORMAT
                or entry.get("key") != key
            ):
                raise ValueError(f"not a {_ENTRY_FORMAT} entry")
            return (
                True,
                entry["value"],
                float(entry.get("elapsed_s", 0.0)),
                entry.get("trace"),
            )
        except FileNotFoundError:
            return False, None, 0.0, None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            return False, None, 0.0, None

    def put(
        self,
        key: str,
        value: object,
        elapsed_s: float,
        trace: dict | None = None,
    ) -> None:
        """Store a cell value atomically (write-to-temp, then rename).

        Failures are swallowed: a read-only or full filesystem must never
        break an experiment run.
        """
        path = self.path_for(key)
        entry = {
            "format": _ENTRY_FORMAT,
            "key": key,
            "elapsed_s": float(elapsed_s),
            "value": value,
            "trace": trace,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            pass
