#!/usr/bin/env python3
"""Attacking a victim with realistic, traffic-driven autoscaling.

The paper's evaluation pins victim fleets at fixed sizes; real victims
breathe with their traffic (§2.2 autoscaling).  Here the victim is a
login service whose instance count follows a diurnal load with a lunchtime
burst, driven by the platform autoscaler — and the attacker's primed
footprint still covers it at every point of the day.

Run:  python examples/victim_workload.py
"""

from repro import units
from repro.cloud.autoscaler import Autoscaler
from repro.cloud.services import ServiceConfig
from repro.cloud.workloads import BurstLoad, DiurnalLoad
from repro.core.attack.strategies import optimized_launch
from repro.experiments.base import default_env


class LunchRush:
    """Diurnal base traffic plus a lunchtime burst."""

    def __init__(self) -> None:
        self.diurnal = DiurnalLoad(trough=10, peak=60, period_s=units.DAY)
        self.burst = BurstLoad(
            base=0, burst=40,
            burst_start_s=0.5 * units.HOUR, burst_duration_s=1 * units.HOUR,
        )

    def concurrency_at(self, elapsed_s: float) -> int:
        return self.diurnal.concurrency_at(elapsed_s) + self.burst.concurrency_at(
            elapsed_s
        )


def main() -> None:
    env = default_env("us-east1", seed=71)

    # The attacker primes its fleet first and stays resident.
    outcome = optimized_launch(env.attacker)
    attacker_hosts = {
        env.orchestrator.true_host_of(h.instance_id)
        for h in outcome.handles
        if h.alive
    }
    print(f"attacker resident on {len(attacker_hosts)} hosts (${outcome.cost_usd:.2f})")

    # The victim's service scales with its traffic.
    victim_service = env.orchestrator.deploy_service(
        "account-2", ServiceConfig(name="login", max_instances=200)
    )
    scaler = Autoscaler(env.orchestrator, victim_service, evaluation_period_s=60.0)
    trace = scaler.drive(LunchRush(), duration_s=2 * units.HOUR)

    print("victim autoscaling over two hours (sampled every 15 min):")
    for point in trace.points[::15]:
        victims = env.orchestrator.alive_instances(victim_service)
        covered = sum(1 for i in victims if i.host_id in attacker_hosts)
        active = [i for i in victims if i.state.value == "active"]
        print(
            f"  t={point.elapsed_s / 60:>5.0f} min  demand={point.demanded_concurrency:>3} "
            f"active={point.active_instances:>3}  covered "
            f"{covered}/{len(victims)} instances"
        )

    print(f"peak {trace.peak_instances} / trough {trace.trough_instances} instances")
    victims = env.orchestrator.alive_instances(victim_service)
    covered = sum(1 for i in victims if i.host_id in attacker_hosts)
    print(
        f"end of window: attacker co-located with {covered}/{len(victims)} "
        f"victim instances ({100 * covered / len(victims):.0f}%)"
    )


if __name__ == "__main__":
    main()
