"""EAAO reproduction: co-location attacks on public cloud FaaS.

A production-quality reproduction of "Everywhere All at Once: Co-Location
Attacks on Public Cloud FaaS" (Zhao, Morrison, Fletcher, Torrellas --
ASPLOS 2024) on a simulated Cloud Run-style substrate.

Layers
------
``repro.simtime``
    Deterministic simulated wall clock and event scheduler.
``repro.hardware``
    Physical hosts: CPU models, invariant TSC (with per-host frequency
    error), timing-noise models, and the shared hardware RNG.
``repro.sandbox``
    Gen 1 (gVisor-style container) and Gen 2 (microVM) execution
    environments.
``repro.cloud``
    The FaaS platform: orchestrator, placement policy, autoscaling,
    billing, and the black-box client API.
``repro.core``
    The paper's contribution: host fingerprinting, scalable co-location
    verification, and adversarial launching strategies.
``repro.analysis``
    Clustering metrics (FMI), drift fitting, distribution helpers.
``repro.experiments``
    Drivers regenerating every table and figure of the paper.

Quickstart
----------
>>> from repro.experiments.base import default_env
>>> from repro.core.attack.strategies import optimized_launch
>>> env = default_env("us-west1", seed=1)
>>> outcome = optimized_launch(env.attacker, n_services=2, launches=3,
...                            instances_per_service=100)
>>> len(outcome.apparent_hosts) > 0
True
"""

from repro._version import __version__
from repro.cloud import DataCenter, FaaSClient, Orchestrator
from repro.core import (
    Gen1Fingerprint,
    Gen2Fingerprint,
    PairwiseVerifier,
    RngCovertChannel,
    ScalableVerifier,
)
from repro.errors import ReproError

__all__ = [
    "__version__",
    "DataCenter",
    "FaaSClient",
    "Orchestrator",
    "Gen1Fingerprint",
    "Gen2Fingerprint",
    "PairwiseVerifier",
    "RngCovertChannel",
    "ScalableVerifier",
    "ReproError",
]
