"""Tracking hosts over time through their fingerprints (paper §4.4.2).

Conventional pairwise covert channels only confirm co-location *at one
moment*; fingerprints let an attacker recognize the same host across hours
or days — until the reported-frequency drift pushes the rounded boot time
over a rounding boundary and the fingerprint "expires".

:class:`HostTracker` keeps one long-running probe instance per apparent host
and records its derived (unrounded) boot time on a fixed cadence, producing
per-host fingerprint histories for drift fitting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.analysis.drift import DriftFit, estimate_expiration_time, fit_boot_time_drift
from repro.cloud.api import FaaSClient, InstanceHandle
from repro.cloud.services import ServiceConfig
from repro.core import probes
from repro.core.fingerprint import fingerprint_gen1_instances


@dataclass
class FingerprintHistory:
    """One host's fingerprint measurements over time."""

    wall_times: list[float] = field(default_factory=list)
    boot_times: list[float] = field(default_factory=list)

    @property
    def span_seconds(self) -> float:
        """Time between the first and last measurement."""
        if len(self.wall_times) < 2:
            return 0.0
        return self.wall_times[-1] - self.wall_times[0]

    def fit_drift(self) -> DriftFit:
        """Fit the boot-time drift line for this history."""
        return fit_boot_time_drift(self.wall_times, self.boot_times)

    def expiration_seconds(self, p_boot: float = 1.0) -> float:
        """Estimated fingerprint lifetime from the first measurement."""
        fit = self.fit_drift()
        return estimate_expiration_time(fit, self.wall_times[0], p_boot)


class HostTracker:
    """Continuously fingerprints a set of hosts via long-running instances.

    Parameters
    ----------
    client:
        The attacker's FaaS client.
    n_launch:
        Instances to launch initially; one tracked representative is kept
        per apparent host discovered among them.
    max_tracked:
        Upper bound on the number of tracked hosts.
    """

    def __init__(
        self, client: FaaSClient, n_launch: int = 100, max_tracked: int = 80
    ) -> None:
        self._client = client
        self._n_launch = n_launch
        self._max_tracked = max_tracked
        self._trackers: list[InstanceHandle] = []
        self.histories: list[FingerprintHistory] = []
        self._service_name: str | None = None

    def start(self, service_name: str = "tracker") -> int:
        """Launch instances and select one representative per apparent host.

        Returns the number of hosts being tracked.
        """
        self._service_name = self._client.deploy(
            ServiceConfig(name=service_name, max_instances=max(100, self._n_launch))
        )
        handles = self._client.connect(self._service_name, self._n_launch)
        tagged = fingerprint_gen1_instances(handles, p_boot=1.0)
        reps: dict[object, InstanceHandle] = {}
        for handle, fingerprint in tagged:
            reps.setdefault(fingerprint, handle)
        self._trackers = list(reps.values())[: self._max_tracked]
        self.histories = [FingerprintHistory() for _ in self._trackers]
        return len(self._trackers)

    def observe(self) -> None:
        """Take one fingerprint sample from every tracked instance."""
        for handle, history in zip(self._trackers, self.histories):
            if not handle.alive:
                continue
            sample = handle.run(probes.gen1_fingerprint_probe)
            history.wall_times.append(sample.wall_time)
            history.boot_times.append(sample.boot_time())

    def run(
        self,
        duration_s: float = 7 * units.DAY,
        cadence_s: float = 1 * units.HOUR,
        min_history_s: float = 24 * units.HOUR,
    ) -> list[FingerprintHistory]:
        """Observe on a fixed cadence for ``duration_s``.

        Histories shorter than ``min_history_s`` (e.g. because an instance
        died) are filtered out, matching the paper's 24-hour cutoff.
        """
        if not self._trackers:
            self.start()
        elapsed = 0.0
        self.observe()
        while elapsed < duration_s:
            self._client.wait(cadence_s)
            elapsed += cadence_s
            self.observe()
        return [h for h in self.histories if h.span_seconds >= min_history_s]
