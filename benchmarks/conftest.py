"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at full scale
(800-instance launches, the three US datacenters), prints a
paper-vs-measured comparison, and asserts the reproduction band: we match
*shape* — who wins, by roughly what factor, where crossovers fall — not the
authors' absolute testbed numbers.

Run with::

    pytest benchmarks/ --benchmark-only

Append ``-s`` to see the regenerated tables inline.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Benchmark ``fn`` with exactly one timed execution.

    Experiment drivers are deterministic end-to-end simulations; repeating
    them only re-measures the same code path, so one round suffices.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def emit():
    """Print a regenerated table so `-s` shows it inline."""

    def _emit(text: str) -> None:
        print()
        print(text)

    return _emit
