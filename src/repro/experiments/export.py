"""Exporting experiment results to JSON for external plotting.

Experiment drivers return typed dataclasses; this module flattens them —
recursively through dataclasses, mappings, sequences, and simple scalars —
into JSON-safe structures so results can feed matplotlib/pandas pipelines
outside this repository.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Any

from repro.errors import ReproError


class ExportError(ReproError):
    """Raised when a result contains something JSON cannot represent."""


_MAX_DEPTH = 24


def to_jsonable(value: Any, _depth: int = 0) -> Any:
    """Convert an experiment result into JSON-safe plain data.

    Handles dataclasses, dicts (keys coerced to strings), lists/tuples/
    sets, floats (non-finite become strings), and passthrough scalars.

    Raises
    ------
    ExportError
        For unsupported objects (instance handles, sandboxes, ...), which
        signal that a result type leaked simulator internals.
    """
    if _depth > _MAX_DEPTH:
        raise ExportError("result nesting exceeds the export depth limit")
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name), _depth + 1)
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {
            _key_to_str(key): to_jsonable(item, _depth + 1)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item, _depth + 1) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(
            (to_jsonable(item, _depth + 1) for item in value),
            key=lambda x: json.dumps(x, sort_keys=True),
        )
    # numpy scalars expose .item(); accept them without importing numpy.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return to_jsonable(item(), _depth + 1)
        except (TypeError, ValueError):
            pass
    raise ExportError(
        f"cannot export value of type {type(value).__name__}; experiment "
        "results must stay plain data"
    )


def _key_to_str(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, (int, float, bool)):
        return str(key)
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def save_result(result: Any, path: str | Path, experiment_id: str = "") -> None:
    """Write a result to ``path`` as JSON with a small metadata envelope."""
    payload = {
        "format": "repro-experiment-result",
        "experiment": experiment_id,
        "result": to_jsonable(result),
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_result(path: str | Path) -> Any:
    """Read back the raw JSON result written by :func:`save_result`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-experiment-result":
        raise ExportError(f"{path} is not an exported experiment result")
    return payload["result"]
