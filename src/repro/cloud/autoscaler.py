"""Driving a service's instance count from a request workload.

Glues a :class:`~repro.cloud.workloads.RequestPattern` to the
orchestrator's autoscaler: at a fixed evaluation cadence, the desired
instance count is ``ceil(concurrency / per-instance concurrency)`` and the
service is scaled to it (§2.2).  The recorded trace lets experiments study
how victim traffic shapes the victim's host footprint over time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cloud.orchestrator import Orchestrator
from repro.cloud.services import Service
from repro.cloud.workloads import RequestPattern
from repro.telemetry import current_telemetry


@dataclass(frozen=True)
class AutoscalePoint:
    """One autoscaler evaluation."""

    elapsed_s: float
    demanded_concurrency: int
    target_instances: int
    active_instances: int
    alive_instances: int


@dataclass
class AutoscaleTrace:
    """The instance-count history of one driven service."""

    points: list[AutoscalePoint] = field(default_factory=list)

    @property
    def peak_instances(self) -> int:
        return max((p.active_instances for p in self.points), default=0)

    @property
    def trough_instances(self) -> int:
        return min((p.active_instances for p in self.points), default=0)

    def active_series(self) -> list[tuple[float, int]]:
        """``(elapsed_s, active_instances)`` pairs for plotting."""
        return [(p.elapsed_s, p.active_instances) for p in self.points]


class Autoscaler:
    """Periodically rescales one service to match a request pattern.

    Parameters
    ----------
    orchestrator / service:
        The platform and the managed service.
    evaluation_period_s:
        How often the autoscaler reevaluates demand.
    """

    def __init__(
        self,
        orchestrator: Orchestrator,
        service: Service,
        evaluation_period_s: float = 15.0,
    ) -> None:
        if evaluation_period_s <= 0:
            raise ValueError(
                f"evaluation period must be positive, got {evaluation_period_s}"
            )
        self._orchestrator = orchestrator
        self._service = service
        self.evaluation_period_s = evaluation_period_s

    def target_for(self, concurrency: int) -> int:
        """Instances needed for ``concurrency`` concurrent requests."""
        per_instance = self._service.config.concurrency
        return min(
            math.ceil(concurrency / per_instance),
            self._service.config.max_instances,
        )

    def drive(self, pattern: RequestPattern, duration_s: float) -> AutoscaleTrace:
        """Follow ``pattern`` for ``duration_s``, returning the trace.

        Evaluations happen on a fixed slot grid (``k * evaluation_period_s``
        from the start) and demand is always sampled at the slot's *nominal*
        time.  When one evaluation consumes more simulated time than the
        cadence (cold-start sleeps, fault slow-launch penalties), the slots
        that passed meanwhile are skipped with an explicit
        ``autoscaler.missed_evaluations`` count — previously they were
        silently dropped and the next sample drifted to the post-sleep
        clock reading, so overruns quietly resampled the pattern at times
        it was never scheduled to see.
        """
        trace = AutoscaleTrace()
        clock = self._orchestrator.clock
        telemetry = current_telemetry()
        start = clock.now()
        period = self.evaluation_period_s
        last_slot = int(math.floor(duration_s / period + 1e-9))
        slot = 0
        while slot <= last_slot:
            nominal = slot * period
            demanded = pattern.concurrency_at(nominal)
            target = self.target_for(demanded)
            active = self._orchestrator.scale_to(self._service, target)
            trace.points.append(
                AutoscalePoint(
                    elapsed_s=nominal,
                    demanded_concurrency=demanded,
                    target_instances=target,
                    active_instances=len(active),
                    alive_instances=self._orchestrator.alive_count(self._service),
                )
            )
            elapsed = clock.now() - start
            next_slot = slot + 1
            caught_up = int(math.ceil(elapsed / period - 1e-9))
            if caught_up > next_slot:
                # The evaluation overran the cadence: account for every
                # schedulable slot that passed while it ran.
                missed = min(caught_up, last_slot + 1) - next_slot
                if missed > 0:
                    telemetry.count("autoscaler.missed_evaluations", missed)
                next_slot = caught_up
            slot = next_slot
            if slot > last_slot:
                break
            wake = start + slot * period
            if wake > clock.now():
                clock.sleep(wake - clock.now())
        return trace

    def footprint(self) -> set[str]:
        """Ground-truth host ids currently hosting the service (simulator
        introspection; black-box callers should fingerprint instead)."""
        return {
            instance.host_id
            for instance in self._orchestrator.alive_instances(self._service)
        }
