"""Property-based tests for policy inference on synthetic observations."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis.policy_inference import (
    IdlePolicyEstimate,
    estimate_base_set_size,
    estimate_recruit_rate,
    fit_idle_policy,
)


@st.composite
def idle_curves(draw):
    grace_min = draw(st.floats(0.5, 5.0))
    span_min = draw(st.floats(2.0, 15.0))
    total = draw(st.integers(50, 1000))
    deadline_min = grace_min + span_min
    series = []
    t = 0.0
    while t <= deadline_min + 4.0:
        if t <= grace_min:
            alive = total
        elif t >= deadline_min:
            alive = 0
        else:
            alive = int(total * (deadline_min - t) / (deadline_min - grace_min))
        series.append((t, alive))
        t += 0.25
    return grace_min, deadline_min, total, series


@given(idle_curves())
@settings(max_examples=40)
def test_idle_fit_recovers_synthetic_policy(case):
    grace_min, deadline_min, total, series = case
    estimate = fit_idle_policy(series, total_instances=total)
    assert estimate.grace_s == pytest.approx(grace_min * 60.0, abs=30.0)
    assert estimate.deadline_s == pytest.approx(deadline_min * 60.0, abs=60.0)


@given(
    st.floats(10.0, 600.0),
    st.floats(601.0, 2000.0),
    st.floats(0.0, 3000.0),
)
def test_survival_fraction_monotone_and_bounded(grace, deadline, at):
    estimate = IdlePolicyEstimate(grace_s=grace, deadline_s=deadline)
    value = estimate.survival_fraction(at)
    assert 0.0 <= value <= 1.0
    later = estimate.survival_fraction(at + 100.0)
    assert later <= value


@given(st.lists(st.integers(40, 110), min_size=1, max_size=15))
def test_base_size_estimate_within_observed_range(footprints):
    estimate = estimate_base_set_size(footprints)
    assert min(footprints) <= estimate <= max(footprints)


@given(
    base=st.integers(50, 100),
    per_launch_growth=st.integers(0, 80),
    launches=st.integers(2, 8),
    rate_denominator=st.floats(100.0, 800.0),
)
def test_recruit_rate_inverts_synthetic_series(
    base, per_launch_growth, launches, rate_denominator
):
    idle = IdlePolicyEstimate(grace_s=120.0, deadline_s=720.0)
    interval = 600.0  # survival 0.2 -> replaced = 0.8 * N
    n = int(rate_denominator)
    replaced = n * (1 - idle.survival_fraction(interval))
    assume(replaced > 0)
    footprints = [base + i * per_launch_growth for i in range(launches)]
    rate = estimate_recruit_rate(
        footprints, instances_per_launch=n, interval_s=interval, idle_policy=idle
    )
    expected = per_launch_growth / replaced if per_launch_growth else 0.0
    assert rate == pytest.approx(expected, rel=1e-6, abs=1e-9)
