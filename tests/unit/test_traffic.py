"""Unit tests for the background-traffic engine (:mod:`repro.cloud.traffic`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.cloud.instance import InstanceState
from repro.cloud.traffic import (
    PATTERN_KINDS,
    BackgroundDriver,
    TenantPopulation,
    TrafficConfig,
)
from repro.errors import CloudError
from repro.telemetry import Telemetry, telemetry_context


def small_config(**overrides) -> TrafficConfig:
    defaults = dict(
        n_tenants=6,
        seed=11,
        duration_s=4 * units.MINUTE,
        evaluation_period_s=15.0,
        mean_concurrency=2.0,
        max_instances=5,
    )
    defaults.update(overrides)
    return TrafficConfig(**defaults)


class TestTrafficConfig:
    def test_negative_tenants_rejected(self):
        with pytest.raises(CloudError):
            TrafficConfig(n_tenants=-1)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(CloudError):
            TrafficConfig(duration_s=0.0)

    def test_nonpositive_period_rejected(self):
        with pytest.raises(CloudError):
            TrafficConfig(evaluation_period_s=-1.0)

    def test_pattern_weights_must_cover_every_kind(self):
        with pytest.raises(CloudError):
            TrafficConfig(pattern_weights=(1.0, 1.0))

    def test_size_weights_must_match_names(self):
        with pytest.raises(CloudError):
            TrafficConfig(size_names=("Pico",), size_weights=(0.5, 0.5))

    def test_unknown_size_rejected(self):
        with pytest.raises(CloudError):
            TrafficConfig(size_names=("Gargantuan",), size_weights=(1.0,))

    def test_max_instances_floor(self):
        with pytest.raises(CloudError):
            TrafficConfig(max_instances=0)


class TestTenantPopulation:
    def test_generate_is_deterministic(self):
        a = TenantPopulation.generate(small_config())
        b = TenantPopulation.generate(small_config())
        assert [s.account_id for s in a.specs] == [s.account_id for s in b.specs]
        assert [s.kind for s in a.specs] == [s.kind for s in b.specs]
        assert np.array_equal(a.demand, b.demand)
        assert np.array_equal(a.targets, b.targets)

    def test_different_seed_changes_schedules(self):
        a = TenantPopulation.generate(small_config(seed=1))
        b = TenantPopulation.generate(small_config(seed=2))
        assert not np.array_equal(a.demand, b.demand)

    def test_schedule_shape_covers_duration(self):
        config = small_config()
        population = TenantPopulation.generate(config)
        n_slots = int(config.duration_s / config.evaluation_period_s) + 1
        assert population.targets.shape == (config.n_tenants, n_slots)
        assert population.demand.shape == population.targets.shape

    def test_targets_are_clamped_and_nonnegative(self):
        population = TenantPopulation.generate(
            small_config(n_tenants=40, mean_concurrency=50.0, max_instances=3)
        )
        assert population.targets.min() >= 0
        assert population.targets.max() <= 3
        # A huge mean actually hits the clamp somewhere.
        assert (population.targets == 3).any()

    def test_targets_are_ceil_division_of_demand(self):
        population = TenantPopulation.generate(small_config(n_tenants=20))
        conc = np.asarray([s.concurrency for s in population.specs])
        expected = np.minimum(
            -(-population.demand // conc[:, None]),
            population.config.max_instances,
        )
        assert np.array_equal(population.targets, expected)

    def test_kinds_come_from_the_catalog(self):
        population = TenantPopulation.generate(small_config(n_tenants=30))
        assert {s.kind for s in population.specs} <= set(PATTERN_KINDS)

    def test_phases_stay_inside_one_period(self):
        config = small_config(n_tenants=30)
        population = TenantPopulation.generate(config)
        for spec in population.specs:
            assert 0.0 <= spec.phase_s < config.evaluation_period_s

    def test_empty_population(self):
        population = TenantPopulation.generate(small_config(n_tenants=0))
        assert population.n_tenants == 0
        assert population.targets.shape[0] == 0


class TestBackgroundDriver:
    def drive(self, env, config=None):
        config = config or small_config()
        population = TenantPopulation.generate(config)
        driver = BackgroundDriver(env.orchestrator, population)
        driver.start()
        return driver

    def test_start_deploys_one_service_per_tenant(self, tiny_env):
        before = len(tiny_env.orchestrator.services)
        driver = self.drive(tiny_env)
        assert len(tiny_env.orchestrator.services) == before + driver.population.n_tenants

    def test_double_start_rejected(self, tiny_env):
        driver = self.drive(tiny_env)
        with pytest.raises(CloudError):
            driver.start()

    def test_sleep_drains_every_scheduled_evaluation(self, tiny_env):
        config = small_config()
        driver = self.drive(tiny_env, config)
        tiny_env.clock.sleep(config.duration_s + config.evaluation_period_s)
        population = driver.population
        # Each tenant evaluates every slot whose nominal time (phase plus
        # slot cadence) falls inside the traffic horizon.
        expected = sum(
            sum(
                1
                for k in range(population.n_slots)
                if spec.phase_s + k * config.evaluation_period_s
                <= config.duration_s
            )
            for spec in population.specs
        )
        assert driver.stats.evaluations == expected

    def test_active_counts_track_targets(self, tiny_env):
        config = small_config()
        driver = self.drive(tiny_env, config)
        # Sleep to halfway between slots so no group sits on a boundary.
        period = config.evaluation_period_s
        elapsed = 6 * period + period / 2
        tiny_env.clock.sleep(elapsed)
        state = tiny_env.orchestrator.service_state
        for spec in driver.population.specs:
            index = state.index_of(f"{spec.account_id}/{spec.service_name}")
            slot = int((elapsed - spec.phase_s) // period)
            slot = min(slot, driver.population.n_slots - 1)
            assert state.active_count(index) == driver.population.targets[
                spec.index, slot
            ]

    def test_stop_cancels_future_evaluations(self, tiny_env):
        config = small_config()
        driver = self.drive(tiny_env, config)
        tiny_env.clock.sleep(config.evaluation_period_s)
        seen = driver.stats.evaluations
        driver.stop()
        tiny_env.clock.sleep(config.duration_s)
        assert driver.stats.evaluations == seen

    def test_stats_mirror_telemetry_counters(self, tiny_env_factory):
        telemetry = Telemetry()
        with telemetry_context(telemetry):
            env = tiny_env_factory()
            config = small_config()
            driver = BackgroundDriver(
                env.orchestrator, TenantPopulation.generate(config)
            )
            driver.start()
            env.clock.sleep(config.duration_s + config.evaluation_period_s)
        metrics = telemetry.metrics
        assert metrics.counter("traffic.evaluations") == driver.stats.evaluations
        assert metrics.counter("traffic.requests") == driver.stats.requests
        assert driver.stats.rejected == 0

    def test_background_instances_counts_alive(self, tiny_env):
        config = small_config()
        driver = self.drive(tiny_env, config)
        tiny_env.clock.sleep(5 * config.evaluation_period_s)
        alive = [
            i
            for i in tiny_env.orchestrator.instances.values()
            if i.state is not InstanceState.TERMINATED
            and i.service.account_id.startswith("bg-")
        ]
        assert driver.background_instances() == len(alive)
        if alive:
            assert 0.0 < driver.utilization() <= 1.0

    def test_identical_seeds_reproduce_the_world(self, tiny_env_factory):
        def final_state(env):
            config = small_config()
            driver = BackgroundDriver(
                env.orchestrator, TenantPopulation.generate(config)
            )
            driver.start()
            env.clock.sleep(config.duration_s + config.evaluation_period_s)
            state = env.orchestrator.service_state
            counts = [
                state.active_count(state.index_of(f"{s.account_id}/svc"))
                for s in driver.population.specs
            ]
            return counts, driver.stats

        counts_a, stats_a = final_state(tiny_env_factory())
        counts_b, stats_b = final_state(tiny_env_factory())
        assert counts_a == counts_b
        assert stats_a == stats_b
