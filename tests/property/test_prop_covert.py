"""Property-based tests for the covert channel over random placements."""

from hypothesis import given, settings, strategies as st

from repro.cloud.services import ServiceConfig
from repro.core.covert import RngCovertChannel
from repro.experiments.base import default_env

from tests.conftest import tiny_profile


@st.composite
def channel_cases(draw):
    seed = draw(st.integers(0, 50))
    n = draw(st.integers(2, 15))
    m = draw(st.integers(2, 3))
    return seed, n, m


@given(channel_cases())
@settings(max_examples=15, deadline=None)
def test_ctest_matches_ground_truth(case):
    """A CTest's verdicts must agree with the true host map: an instance is
    positive iff at least m pressurers (itself included) share its host."""
    seed, n, m = case
    env = default_env(profile=tiny_profile(), seed=seed)
    client = env.attacker
    name = client.deploy(ServiceConfig(name="prop"))
    handles = client.connect(name, n)
    channel = RngCovertChannel()
    result = channel.ctest(handles, threshold_m=m)

    host_of = {
        h.instance_id: env.orchestrator.true_host_of(h.instance_id) for h in handles
    }
    counts: dict[str, int] = {}
    for host in host_of.values():
        counts[host] = counts.get(host, 0) + 1
    for handle, positive in zip(result.handles, result.positive):
        expected = counts[host_of[handle.instance_id]] >= m
        assert positive == expected


@given(st.integers(0, 50), st.integers(2, 10))
@settings(max_examples=10, deadline=None)
def test_ctest_order_invariant(seed, n):
    """Shuffling the instance list must not change per-instance verdicts."""
    env = default_env(profile=tiny_profile(), seed=seed)
    client = env.attacker
    name = client.deploy(ServiceConfig(name="prop2"))
    handles = client.connect(name, n)
    channel = RngCovertChannel()
    forward = channel.ctest(handles, threshold_m=2)
    backward = channel.ctest(list(reversed(handles)), threshold_m=2)
    verdict_fwd = dict(zip((h.instance_id for h in forward.handles), forward.positive))
    verdict_bwd = dict(zip((h.instance_id for h in backward.handles), backward.positive))
    assert verdict_fwd == verdict_bwd
