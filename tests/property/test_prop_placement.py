"""Property-based tests for the placement policy."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cloud.placement import PlacementPolicy, PlacementRequest
from repro.fleet import FleetStore


@st.composite
def placement_cases(draw):
    n_hosts = draw(st.integers(min_value=1, max_value=12))
    capacity = draw(st.floats(min_value=4.0, max_value=64.0))
    slots = draw(st.sampled_from([0.25, 1.0, 2.0, 4.0]))
    per_host = int(capacity // slots)
    max_count = n_hosts * per_host
    count = draw(st.integers(min_value=0, max_value=max(0, min(max_count, 80))))
    seed = draw(st.integers(min_value=0, max_value=1000))
    return n_hosts, capacity, slots, count, seed


def build(n_hosts, capacity):
    store = FleetStore([f"h{i}" for i in range(n_hosts)], capacity_slots=capacity)
    return store, store.all_indices.copy()


@given(placement_cases())
@settings(max_examples=60)
def test_capacity_never_exceeded(case):
    n_hosts, capacity, slots, count, seed = case
    store, allowed = build(n_hosts, capacity)
    policy = PlacementPolicy(np.random.default_rng(seed))
    placed = policy.place(
        PlacementRequest(count=count, slots_per_instance=slots, allowed=allowed),
        store,
    )
    assert len(placed) == count
    picks = np.bincount(placed, minlength=n_hosts)
    for index in range(n_hosts):
        used = store.load_slots[index]
        assert used <= capacity + 1e-9
        assert used == picks[index] * slots

@given(placement_cases())
@settings(max_examples=60)
def test_spread_is_near_uniform(case):
    n_hosts, capacity, slots, count, seed = case
    store, allowed = build(n_hosts, capacity)
    policy = PlacementPolicy(np.random.default_rng(seed))
    placed = policy.place(
        PlacementRequest(count=count, slots_per_instance=slots, allowed=allowed),
        store,
    )
    counts = np.bincount(placed, minlength=n_hosts)
    # With no capacity pressure the per-service counts differ by <= 1;
    # capacity clipping can only widen the gap when hosts fill up.
    if counts.max() * slots <= capacity:
        assert counts.max() - counts.min() <= 1


@given(placement_cases(), st.integers(min_value=0, max_value=1000))
@settings(max_examples=40)
def test_deterministic_in_seed(case, seed2):
    n_hosts, capacity, slots, count, seed = case
    store, allowed = build(n_hosts, capacity)
    baseline = store.snapshot()

    def run(s):
        store.restore(baseline)
        policy = PlacementPolicy(np.random.default_rng(s))
        return policy.place(
            PlacementRequest(count=count, slots_per_instance=slots, allowed=allowed),
            store,
        ).tolist()

    assert run(seed) == run(seed)


@given(placement_cases())
@settings(max_examples=60)
def test_fast_path_matches_heap_path(case):
    """Whenever the vectorized path is eligible it must reproduce the heap
    path's exact pick sequence and load column."""
    n_hosts, capacity, slots, count, seed = case
    store, allowed = build(n_hosts, capacity)
    request = PlacementRequest(
        count=count, slots_per_instance=slots, allowed=allowed
    )
    policy = PlacementPolicy(np.random.default_rng(seed))
    if not policy._no_host_can_fill(request, store, allowed):
        return
    baseline = store.snapshot()
    fast = policy.place(request, store).tolist()
    fast_load = store.load_slots.copy()

    store.restore(baseline)
    policy = PlacementPolicy(np.random.default_rng(seed))
    tiebreaks = policy._rng.random(allowed.size)
    heap = policy._place_heap(
        request,
        store,
        allowed,
        np.zeros(allowed.size, dtype=np.int64),
        tiebreaks,
        None,
    ).tolist()
    assert fast == heap
    assert np.array_equal(fast_load, store.load_slots)
