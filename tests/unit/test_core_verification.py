"""Unit tests for the scalable co-location verifier."""

import pytest

from repro.analysis.metrics import pair_confusion
from repro.cloud.services import ServiceConfig
from repro.core.covert import RngCovertChannel
from repro.core.fingerprint import (
    Gen1Fingerprint,
    fingerprint_gen1_instances,
    fingerprint_gen2_instances,
)
from repro.core.verification import (
    ScalableVerifier,
    TaggedInstance,
    _balanced_chunks,
    tag_instances,
)
from repro.errors import VerificationError


def launch_and_tag(env, n, generation="gen1", name="svc"):
    client = env.attacker
    service = client.deploy(ServiceConfig(name=name, generation=generation))
    handles = client.connect(service, n)
    if generation == "gen2":
        pairs = fingerprint_gen2_instances(handles)
        tagged = [TaggedInstance(h, fp) for h, fp in pairs]
    else:
        pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
        tagged = [TaggedInstance(h, fp, fp.cpu_model) for h, fp in pairs]
    truth = {h.instance_id: env.orchestrator.true_host_of(h.instance_id) for h in handles}
    return tagged, truth


class TestScalableVerifier:
    def test_recovers_true_clusters(self, tiny_env):
        tagged, truth = launch_and_tag(tiny_env, 40)
        report = ScalableVerifier(RngCovertChannel()).verify(tagged)
        confusion = pair_confusion(report.cluster_index(), truth)
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0

    def test_cluster_count_matches_hosts(self, tiny_env):
        tagged, truth = launch_and_tag(tiny_env, 40)
        report = ScalableVerifier(RngCovertChannel()).verify(tagged)
        assert report.n_hosts == len(set(truth.values()))

    def test_covers_every_instance(self, tiny_env):
        tagged, _truth = launch_and_tag(tiny_env, 25)
        report = ScalableVerifier(RngCovertChannel()).verify(tagged)
        covered = {h.instance_id for c in report.clusters for h in c}
        assert covered == {t.handle.instance_id for t in tagged}

    def test_far_fewer_tests_than_pairwise(self, tiny_env):
        tagged, truth = launch_and_tag(tiny_env, 40)
        report = ScalableVerifier(RngCovertChannel()).verify(tagged)
        pairwise_tests = 40 * 39 // 2
        assert report.n_tests < pairwise_tests / 4

    def test_batching_reduces_wall_time(self, tiny_env):
        tagged, _truth = launch_and_tag(tiny_env, 40)
        channel = RngCovertChannel()
        report = ScalableVerifier(channel).verify(tagged)
        assert report.n_batches < report.n_tests
        assert report.busy_seconds == pytest.approx(
            report.n_batches * channel.seconds_per_test
        )

    def test_handles_false_negative_fingerprints(self, tiny_env):
        """Split one fingerprint group artificially (as drift would) and
        check step 3 re-merges the clusters."""
        tagged, truth = launch_and_tag(tiny_env, 30)
        groups: dict = {}
        for t in tagged:
            groups.setdefault(t.fingerprint, []).append(t)
        big_fp, members = max(groups.items(), key=lambda kv: len(kv[1]))
        assert len(members) >= 2
        fake = Gen1Fingerprint(
            cpu_model=big_fp.cpu_model,
            boot_bucket=big_fp.boot_bucket + 1,
            p_boot=big_fp.p_boot,
        )
        split = [
            TaggedInstance(members[0].handle, fake, members[0].model_key)
        ] + [t for t in tagged if t.handle is not members[0].handle]
        report = ScalableVerifier(RngCovertChannel()).verify(split)
        confusion = pair_confusion(report.cluster_index(), truth)
        assert confusion.recall == 1.0
        assert report.merged_false_negatives >= 1

    def test_handles_false_positive_fingerprints(self, tiny_env):
        """Merge two different hosts' groups under one fingerprint and
        check step 2 splits them back apart."""
        tagged, truth = launch_and_tag(tiny_env, 30)
        fingerprints = list({t.fingerprint for t in tagged})
        assert len(fingerprints) >= 2
        keep, merge_away = fingerprints[0], fingerprints[1]
        forged = [
            TaggedInstance(
                t.handle,
                keep if t.fingerprint == merge_away else t.fingerprint,
                t.model_key,
            )
            for t in tagged
        ]
        report = ScalableVerifier(RngCovertChannel()).verify(forged)
        confusion = pair_confusion(report.cluster_index(), truth)
        assert confusion.precision == 1.0

    def test_gen2_mode_skips_false_negative_hunt(self, tiny_env):
        tagged, truth = launch_and_tag(tiny_env, 30, generation="gen2")
        channel = RngCovertChannel()
        report = ScalableVerifier(channel, assume_no_false_negatives=True).verify(tagged)
        confusion = pair_confusion(report.cluster_index(), truth)
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0

    def test_gen2_mode_batches_aggressively(self, tiny_env):
        tagged, _ = launch_and_tag(tiny_env, 30, generation="gen2")
        report = ScalableVerifier(
            RngCovertChannel(), assume_no_false_negatives=True
        ).verify(tagged)
        assert report.n_batches <= max(4, report.n_tests // 2)

    def test_collision_heavy_fallback_stays_cheap(self, tiny_env):
        """With every instance forged onto ONE fingerprint (maximum
        collisions), the fallback must resolve clusters in far fewer than
        pairwise tests, thanks to unit merging and negative-pair memory."""
        tagged, truth = launch_and_tag(tiny_env, 40)
        one_fp = tagged[0].fingerprint
        forged = [TaggedInstance(t.handle, one_fp, t.model_key) for t in tagged]
        report = ScalableVerifier(RngCovertChannel()).verify(forged)
        confusion = pair_confusion(report.cluster_index(), truth)
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0
        n_hosts = len(set(truth.values()))
        # Bound: chunk tests + ~units*hosts interactions, well under C(40,2).
        assert report.n_tests < 40 * 39 // 4

    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_exact_clusters_for_all_thresholds(self, tiny_env_factory, m):
        """Raising m shrinks the test count but must never cost accuracy:
        sub-threshold tests (pairs, small chunks) drop to their own size."""
        env = tiny_env_factory(seed=31)
        client = env.attacker
        from repro.cloud.services import ServiceConfig

        service = client.deploy(ServiceConfig(name="m-sweep"))
        handles = client.connect(service, 40)
        pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
        tagged = [TaggedInstance(h, fp, fp.cpu_model) for h, fp in pairs]
        report = ScalableVerifier(RngCovertChannel(), threshold_m=m).verify(tagged)
        truth = {
            h.instance_id: env.orchestrator.true_host_of(h.instance_id)
            for h in handles
        }
        confusion = pair_confusion(report.cluster_index(), truth)
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0

    def test_threshold_m_validated(self):
        with pytest.raises(VerificationError):
            ScalableVerifier(RngCovertChannel(), threshold_m=1)

    def test_single_instance_input(self, tiny_env):
        tagged, _ = launch_and_tag(tiny_env, 1)
        report = ScalableVerifier(RngCovertChannel()).verify(tagged)
        assert report.n_hosts == 1

    def test_empty_input(self):
        report = ScalableVerifier(RngCovertChannel()).verify([])
        assert report.clusters == []
        assert report.n_tests == 0


class TestBalancedChunks:
    def test_exact_multiples(self):
        assert _balanced_chunks(list(range(9)), 3) == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]

    def test_no_trailing_singleton(self):
        chunks = _balanced_chunks(list(range(10)), 3)
        assert [len(c) for c in chunks] == [3, 3, 2, 2]

    def test_small_inputs(self):
        assert _balanced_chunks([1], 3) == [[1]]
        assert _balanced_chunks([1, 2], 3) == [[1, 2]]

    def test_size_validation(self):
        with pytest.raises(VerificationError):
            _balanced_chunks([1, 2], 1)

    def test_chunks_cover_all(self):
        items = list(range(23))
        chunks = _balanced_chunks(items, 3)
        assert sorted(i for c in chunks for i in c) == items


class TestTagInstances:
    def test_derives_model_keys(self, tiny_env):
        client = tiny_env.attacker
        service = client.deploy(ServiceConfig(name="svc"))
        handles = client.connect(service, 5)
        pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
        tagged = tag_instances(pairs, model_key_fn=lambda fp: fp.cpu_model)
        assert all(t.model_key == t.fingerprint.cpu_model for t in tagged)
