"""Warm-world snapshots: checkpoint a built region once, fork it per cell.

Sweep grids (the figure-family benchmarks, the channel x platform matrix,
the background-load utilization sweep) are dozens of cells that differ in
one knob but share the same simulated *world*: the same region profile,
seed, platform personality, and — most expensively — the same warmed
background-tenant population.  Before this module every cell re-ran
``default_env`` plus the whole traffic warmup; with it, the first cell to
need a world builds it, a :class:`WorldSnapshot` checkpoints the complete
:class:`~repro.experiments.base.SimulationEnv`, and every later cell
*forks* a private copy from the snapshot instead.

The snapshot is the pickled object graph of the environment: fleet-store
and service-state columns, orchestrator instance tables and RNG streams,
the :class:`~repro.simtime.clock.SimClock`, the event-scheduler queue
(pending idle reaps and background evaluations included), and the warmed
:class:`~repro.cloud.traffic.BackgroundDriver` /
:class:`~repro.cloud.traffic.TenantPopulation` state.  Pickle preserves
shared references and exact ``numpy`` bit-generator state, so a forked
world's every subsequent draw, launch, and event firing is byte-identical
to a freshly built one — the twin-world suites pin exactly that.

Byte-identity extends to telemetry: the spans and metrics emitted while
the world was first built are captured on a child handle and re-emitted
(:meth:`~repro.telemetry.Telemetry.graft`) on every fork, so a traced
forked run diffs clean against a traced fresh run.  A snapshot captured
with tracing off carries no build trace and reads as a *miss* when
tracing is on (the cell cache applies the same rule).

Worlds are keyed by a content hash of their :class:`EnvSpec` — the full
set of ``default_env`` inputs.  Forking is disabled (build-fresh, no
snapshot) when an enabled fault plan shapes the world: fault counters
accumulate on the ambient plan object, which a pickled copy would detach
from.  The cache itself is an in-process LRU: persistent pool workers
keep their own and reuse it across every cell of a run.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from repro.cloud.platform import PlatformProfile, platform_profile
from repro.cloud.topology import RegionProfile
from repro.cloud.traffic import TrafficConfig
from repro.faults import FaultSpec, RetryPolicy
from repro.runner.cellspec import canonicalize
from repro.sandbox.base import TscPolicy
from repro.telemetry import (
    MetricSet,
    Telemetry,
    current_telemetry,
    telemetry_context,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.base import SimulationEnv

#: Environment variable bounding the per-process LRU (0 disables it).
WORLD_CACHE_SIZE_ENV = "REPRO_WORLD_CACHE_SIZE"

#: Default number of warm worlds kept per process.  Worlds are a few MB
#: each at benchmark scale; sweeps rarely interleave more than a handful
#: of distinct (seed, platform, background) combinations at once.
DEFAULT_WORLD_CACHE_SIZE = 8


@dataclass(frozen=True)
class EnvSpec:
    """The full identity of one ``default_env`` world.

    Drivers attach one to each :class:`~repro.runner.cellspec.CellSpec`
    (the ``env`` field) to opt the cell into warm-world forking; the
    runner activates the process cache around such cells, and
    ``default_env`` resolves the *actual* spec of whatever it is asked to
    build — so the declared spec is advisory (opt-in plus display) while
    the content hash is always computed from the real inputs.

    Fields mirror :func:`~repro.experiments.base.default_env`.  String
    platform names and :class:`~repro.sandbox.base.TscPolicy` members are
    normalized at construction so equal worlds hash equally however they
    were spelled.
    """

    region: str = "us-east1"
    seed: int = 0
    tsc_policy: str = TscPolicy.NATIVE.value
    profile: RegionProfile | None = None
    background: TrafficConfig | None = None
    platform: PlatformProfile | None = None
    fault_spec: FaultSpec | None = None
    retry_policy: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if isinstance(self.tsc_policy, TscPolicy):
            object.__setattr__(self, "tsc_policy", self.tsc_policy.value)
        if isinstance(self.platform, str):
            object.__setattr__(self, "platform", platform_profile(self.platform))

    @property
    def forkable(self) -> bool:
        """Whether worlds of this spec may be snapshot-forked.

        An enabled fault plan disables forking: its injection decisions
        are pure, but its *counters* accumulate on the ambient plan
        object, and a pickled copy would silently detach from them.
        """
        return self.fault_spec is None or not self.fault_spec.enabled

    def content_hash(self) -> str:
        """SHA-256 over the canonicalized spec (the world cache key)."""
        payload = {
            "region": self.region,
            "seed": int(self.seed),
            "tsc_policy": self.tsc_policy,
            "profile": canonicalize(self.profile),
            "background": canonicalize(self.background),
            "platform": canonicalize(self.platform),
            "fault_spec": canonicalize(self.fault_spec),
            "retry_policy": canonicalize(self.retry_policy),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class WorldSnapshot:
    """One checkpointed world: pickled env graph plus its build trace.

    ``payload`` is immune to later mutation of the source environment —
    capture serializes eagerly.  ``build_trace`` is the telemetry
    (spans + metrics) emitted while the world was built, ``None`` when it
    was captured with tracing off.
    """

    spec_hash: str
    payload: bytes
    build_trace: dict | None = None
    build_seconds: float = 0.0

    @property
    def n_bytes(self) -> int:
        """Size of the pickled world."""
        return len(self.payload)

    @classmethod
    def capture(
        cls,
        env: "SimulationEnv",
        spec_hash: str = "",
        build_trace: dict | None = None,
        build_seconds: float = 0.0,
    ) -> "WorldSnapshot":
        """Checkpoint ``env`` (everything reachable from it) right now."""
        return cls(
            spec_hash=spec_hash,
            payload=pickle.dumps(env, protocol=pickle.HIGHEST_PROTOCOL),
            build_trace=build_trace,
            build_seconds=build_seconds,
        )

    def fork(self) -> "SimulationEnv":
        """Materialize an independent world from the checkpoint.

        The returned environment shares nothing with the source or with
        sibling forks; its clock, RNG streams, scheduler queue, and fleet
        columns resume exactly where :meth:`capture` froze them.  The
        ambient telemetry is re-bound to the restored clock so spans keep
        sim-time stamps after the restore, and the recorded build trace
        (if any) is grafted so a traced forked run stays byte-identical
        to a traced fresh one.
        """
        env: "SimulationEnv" = pickle.loads(self.payload)
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.graft(self.build_trace)
        # The fork path's clock is a *new* object; without the rebind,
        # spans opened after the restore would be stamped from whatever
        # clock the previous cell left behind (or none at all).
        telemetry.use_clock(env.clock)
        return env


class WorldCache:
    """An LRU of warm :class:`WorldSnapshot` entries, hashed by spec.

    Counters (``worldcache.hits`` / ``misses`` / ``evictions`` /
    ``fork_seconds`` / ``build_seconds``) accumulate on :attr:`metrics`
    only — the runner snapshots per-cell deltas into its ``[runner]``
    stats.  They are deliberately *not* mirrored onto the ambient
    telemetry handle: a warm cell's trace must stay byte-identical to a
    cold cell's, and hit/miss tallies (or wall-second timings) recorded
    into the traced metrics would break that.
    """

    def __init__(self, maxsize: int = DEFAULT_WORLD_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"world cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.metrics = MetricSet()
        self._entries: OrderedDict[str, WorldSnapshot] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, spec_hash: str) -> bool:
        return spec_hash in self._entries

    @property
    def hits(self) -> int:
        return int(self.metrics.counter("worldcache.hits"))

    @property
    def misses(self) -> int:
        return int(self.metrics.counter("worldcache.misses"))

    @property
    def evictions(self) -> int:
        return int(self.metrics.counter("worldcache.evictions"))

    def get(self, spec_hash: str) -> WorldSnapshot | None:
        """The snapshot for ``spec_hash`` (refreshes LRU order), or None.

        Pure lookup — no counters; use :meth:`build_or_fork` for the
        accounted path.
        """
        snapshot = self._entries.get(spec_hash)
        if snapshot is not None:
            self._entries.move_to_end(spec_hash)
        return snapshot

    def put(self, snapshot: WorldSnapshot) -> None:
        """Store ``snapshot``, evicting the least-recently-used world."""
        self._entries[snapshot.spec_hash] = snapshot
        self._entries.move_to_end(snapshot.spec_hash)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.metrics.inc("worldcache.evictions")

    def build_or_fork(
        self,
        spec: EnvSpec,
        builder: Callable[[], "SimulationEnv"],
    ) -> "SimulationEnv":
        """Fork a warm world for ``spec``, building (and caching) on miss.

        The miss path returns the freshly built environment itself — the
        checkpoint is taken just before handing it over, so the caller's
        subsequent mutations never leak into the cache.  With tracing
        enabled the build runs on a child telemetry handle whose records
        are grafted back verbatim, which is what lets the fork path
        replay them byte-identically later.  A snapshot captured without
        a build trace counts as a miss when tracing is on (and is then
        rewritten with its trace).
        """
        telemetry = current_telemetry()
        spec_hash = spec.content_hash()
        snapshot = self.get(spec_hash)
        if snapshot is not None and (
            not telemetry.enabled or snapshot.build_trace is not None
        ):
            start = time.perf_counter()
            env = snapshot.fork()
            elapsed = time.perf_counter() - start
            self.metrics.inc("worldcache.hits")
            self.metrics.inc("worldcache.fork_seconds", elapsed)
            return env

        start = time.perf_counter()
        build_trace: dict | None = None
        if telemetry.enabled:
            child = Telemetry()
            with telemetry_context(child):
                env = builder()
            build_trace = child.snapshot_trace()
            # Re-emit on the real handle exactly as direct recording
            # would have, then hand it the world's clock (the child held
            # it during the build).
            telemetry.graft(build_trace)
            telemetry.use_clock(env.clock)
        else:
            env = builder()
        build_seconds = time.perf_counter() - start
        self.put(
            WorldSnapshot.capture(
                env,
                spec_hash=spec_hash,
                build_trace=build_trace,
                build_seconds=build_seconds,
            )
        )
        self.metrics.inc("worldcache.misses")
        self.metrics.inc("worldcache.build_seconds", build_seconds)
        return env

    def stats_snapshot(self) -> dict[str, float]:
        """Counter totals (pair with :meth:`stats_since`)."""
        return self.metrics.snapshot()

    def stats_since(self, before: dict[str, float]) -> dict[str, float]:
        """Counter growth since :meth:`stats_snapshot` (one cell's use)."""
        return self.metrics.since(before)


# ----------------------------------------------------------------------
# Ambient context + per-process cache
# ----------------------------------------------------------------------
_ACTIVE_CACHE: ContextVar[WorldCache | None] = ContextVar(
    "repro_world_cache", default=None
)


def current_world_cache() -> WorldCache | None:
    """The ambient world cache, or ``None`` when forking is off."""
    return _ACTIVE_CACHE.get()


@contextmanager
def world_cache_context(cache: WorldCache | None) -> Iterator[WorldCache | None]:
    """Activate ``cache`` as the ambient world cache for the block.

    ``world_cache_context(None)`` explicitly disables forking inside the
    block (shadowing any outer cache).
    """
    token = _ACTIVE_CACHE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE_CACHE.reset(token)


_PROCESS_CACHE: WorldCache | None = None


def process_world_cache() -> WorldCache | None:
    """This process's persistent world cache (pool workers each own one).

    Sized by ``$REPRO_WORLD_CACHE_SIZE``; ``0`` disables warm-world
    forking process-wide.  Lazily created so the env var is honored at
    first use, and shared across every cell the process executes — that
    reuse across cells is the whole point.
    """
    global _PROCESS_CACHE
    raw = os.environ.get(WORLD_CACHE_SIZE_ENV, "")
    size = DEFAULT_WORLD_CACHE_SIZE
    if raw.strip():
        try:
            size = int(raw)
        except ValueError:
            size = DEFAULT_WORLD_CACHE_SIZE
    if size < 1:
        return None
    if _PROCESS_CACHE is None or _PROCESS_CACHE.maxsize != size:
        _PROCESS_CACHE = WorldCache(maxsize=size)
    return _PROCESS_CACHE


def reset_process_world_cache() -> None:
    """Drop the process cache (test isolation)."""
    global _PROCESS_CACHE
    _PROCESS_CACHE = None
