"""Figure 5: fingerprint expiration time CDF (§4.4.2).

Track one long-running instance per apparent host for a week, recording the
derived boot time every hour; fit the linear drift and extrapolate when the
rounded boot time crosses a rounding boundary.

Paper reference: drift is strongly linear (minimum |r| = 0.9997 across all
histories); most fingerprints last several days; on average ~10% expire
within about 2 days.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.analysis.distributions import cdf_at
from repro.core.attack.tracking import HostTracker
from repro.experiments.base import default_env
from repro.runner import CellSpec, RunnerConfig, run_cells

PAPER_MIN_ABS_R = 0.9997
PAPER_DAYS_TO_10PCT_EXPIRED = 2.0


@dataclass(frozen=True)
class ExpirationConfig:
    """Configuration for the Fig. 5 expiration study."""

    regions: tuple[str, ...] = ("us-east1", "us-central1", "us-west1")
    n_launch: int = 100
    duration_days: float = 7.0
    cadence_hours: float = 1.0
    p_boot: float = 1.0
    base_seed: int = 300


@dataclass
class RegionExpiration:
    """Per-region expiration statistics."""

    region: str
    n_histories: int
    min_abs_r: float
    expiration_days: list[float] = field(default_factory=list)

    def cdf(self, day_grid: tuple[float, ...]) -> list[float]:
        """Fraction of fingerprints expired by each day mark."""
        return cdf_at(self.expiration_days, list(day_grid))

    @property
    def days_to_10pct_expired(self) -> float:
        """Time until 10% of fingerprints have expired."""
        return float(np.percentile(self.expiration_days, 10))


@dataclass
class ExpirationResult:
    """Outcome of the Fig. 5 experiment."""

    regions: list[RegionExpiration] = field(default_factory=list)

    @property
    def min_abs_r(self) -> float:
        return min(r.min_abs_r for r in self.regions)

    @property
    def mean_days_to_10pct_expired(self) -> float:
        return float(np.mean([r.days_to_10pct_expired for r in self.regions]))


def _region_cell(params: dict, seed: int) -> RegionExpiration:
    """One Fig. 5 cell: track one region's hosts for the whole window."""
    env = default_env(params["region"], seed=seed)
    tracker = HostTracker(env.attacker, n_launch=params["n_launch"])
    histories = tracker.run(
        duration_s=params["duration_days"] * units.DAY,
        cadence_s=params["cadence_hours"] * units.HOUR,
    )
    fits = [history.fit_drift() for history in histories]
    expirations = [
        history.expiration_seconds(params["p_boot"]) / units.DAY
        for history in histories
    ]
    return RegionExpiration(
        region=params["region"],
        n_histories=len(histories),
        min_abs_r=min(abs(fit.r_value) for fit in fits),
        expiration_days=expirations,
    )


def run(
    config: ExpirationConfig = ExpirationConfig(),
    runner: RunnerConfig | None = None,
) -> ExpirationResult:
    """Run the Fig. 5 fingerprint-expiration study (one cell per region)."""
    specs = [
        CellSpec(
            experiment="fig5",
            fn=_region_cell,
            config={
                "region": region,
                "n_launch": config.n_launch,
                "duration_days": config.duration_days,
                "cadence_hours": config.cadence_hours,
                "p_boot": config.p_boot,
            },
            seed=config.base_seed + idx,
            label=region,
        )
        for idx, region in enumerate(config.regions)
    ]
    result = ExpirationResult()
    result.regions.extend(cell.value for cell in run_cells(specs, runner))
    return result
