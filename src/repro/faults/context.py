"""Ambient fault plan: thread a :class:`FaultPlan` through deep call stacks.

Experiment cells build their own simulated regions and covert channels
several layers below :func:`~repro.runner.pool.run_cells`, so passing a
fault plan explicitly would mean threading a parameter through every
driver and cell function.  Instead, the runner activates the plan around
each cell execution and fault-aware constructors
(:func:`~repro.experiments.base.default_env`,
:class:`~repro.core.covert.RngCovertChannel`) consult the ambient plan
when none is passed explicitly.

Because the plan's decisions are stateless hashes of ``(seed, site,
token)``, activating the same plan in a worker process or in the parent
yields the same fault schedule — serial and pooled runs stay
byte-identical.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.faults.plan import FaultPlan

_ACTIVE_PLAN: ContextVar[FaultPlan | None] = ContextVar(
    "repro_fault_plan", default=None
)


def current_fault_plan() -> FaultPlan | None:
    """The ambient fault plan, or ``None`` when no injection is active."""
    return _ACTIVE_PLAN.get()


@contextmanager
def fault_context(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Activate ``plan`` as the ambient fault plan for the enclosed block.

    ``fault_context(None)`` is a harmless no-op scope (it shadows any
    outer plan with "no faults", which is what a nested clean run wants).
    """
    token = _ACTIVE_PLAN.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE_PLAN.reset(token)
