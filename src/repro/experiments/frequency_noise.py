"""§4.2: noise of the measured-TSC-frequency method.

Measure the TSC frequency (Δtsc / ΔT_w over ~100 ms windows, 10 repetitions)
on one instance per apparent host and classify the per-host standard
deviation.

Paper reference: most hosts show standard deviations below 100 Hz, but 58
of 586 evaluated hosts (~10%) show 10 kHz up to a few MHz — enough to
derive conflicting boot times on co-located instances — which is why the
paper uses the *reported* frequency instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.cloud.services import ServiceConfig
from repro.core import probes
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.experiments.base import default_env
from repro.runner import CellSpec, RunnerConfig, run_cells

PAPER_PROBLEMATIC_FRACTION = 58 / 586
PAPER_QUIET_STD_HZ = 100.0
PAPER_PROBLEMATIC_MIN_STD_HZ = 10.0 * units.KHZ


@dataclass(frozen=True)
class FrequencyNoiseConfig:
    """Configuration for the §4.2 measured-frequency study."""

    regions: tuple[str, ...] = ("us-east1", "us-central1", "us-west1")
    instances: int = 800
    interval_s: float = 0.1
    repetitions: int = 10
    base_seed: int = 800


@dataclass
class FrequencyNoiseResult:
    """Per-host measured-frequency standard deviations."""

    stds_hz: list[float] = field(default_factory=list)

    @property
    def n_hosts(self) -> int:
        return len(self.stds_hz)

    @property
    def quiet_fraction(self) -> float:
        """Hosts whose std stays below the paper's 100 Hz bound."""
        return sum(1 for s in self.stds_hz if s < PAPER_QUIET_STD_HZ) / self.n_hosts

    @property
    def problematic_fraction(self) -> float:
        """Hosts in the 10 kHz - MHz "problematic" regime."""
        return (
            sum(1 for s in self.stds_hz if s >= PAPER_PROBLEMATIC_MIN_STD_HZ)
            / self.n_hosts
        )

    @property
    def max_std_hz(self) -> float:
        return max(self.stds_hz)


def _region_cell(params: dict, seed: int) -> list[float]:
    """One §4.2 cell: per-host frequency stds for one region."""
    env = default_env(params["region"], seed=seed)
    client = env.attacker
    instances = params["instances"]
    service = client.deploy(
        ServiceConfig(name="freq-noise", max_instances=max(100, instances))
    )
    handles = client.connect(service, instances)
    tagged = fingerprint_gen1_instances(handles, p_boot=1.0)
    reps: dict[object, object] = {}
    for handle, fp in tagged:
        reps.setdefault(fp, handle)
    stds_hz = []
    for handle in reps.values():
        estimate = handle.run(
            lambda sandbox: probes.measured_frequency_probe(
                sandbox,
                interval_s=params["interval_s"],
                repetitions=params["repetitions"],
            )
        )
        stds_hz.append(estimate.std_hz)
    return stds_hz


def run(
    config: FrequencyNoiseConfig = FrequencyNoiseConfig(),
    runner: RunnerConfig | None = None,
) -> FrequencyNoiseResult:
    """Run the measured-frequency noise study over one instance per host."""
    specs = [
        CellSpec(
            experiment="sec42",
            fn=_region_cell,
            config={
                "region": region,
                "instances": config.instances,
                "interval_s": config.interval_s,
                "repetitions": config.repetitions,
            },
            seed=config.base_seed + idx,
            label=region,
        )
        for idx, region in enumerate(config.regions)
    ]
    result = FrequencyNoiseResult()
    for cell in run_cells(specs, runner):
        result.stds_hz.extend(cell.value)
    return result
