"""Integration: attacking a victim whose fleet follows live traffic."""


from repro import units
from repro.cloud.autoscaler import Autoscaler
from repro.cloud.services import ServiceConfig
from repro.cloud.workloads import BurstLoad
from repro.core.attack.residency import ResidencyMaintainer
from repro.core.attack.strategies import optimized_launch


def prime_attacker(env):
    outcome = optimized_launch(
        env.attacker,
        n_services=2,
        launches=4,
        instances_per_service=16,
        interval_s=10 * units.MINUTE,
    )
    return {
        env.orchestrator.true_host_of(h.instance_id)
        for h in outcome.handles
        if h.alive
    }, outcome


class TestWorkloadDrivenVictim:
    def test_coverage_holds_through_scale_out(self, tiny_env):
        attacker_hosts, _outcome = prime_attacker(tiny_env)
        service = tiny_env.orchestrator.deploy_service(
            "account-2", ServiceConfig(name="bursty", max_instances=40)
        )
        scaler = Autoscaler(tiny_env.orchestrator, service)
        pattern = BurstLoad(
            base=4, burst=30, burst_start_s=120.0, burst_duration_s=240.0
        )
        scaler.drive(pattern, duration_s=300.0)
        victims = tiny_env.orchestrator.alive_instances(service)
        assert len(victims) >= 30  # mid-burst fleet
        covered = sum(1 for i in victims if i.host_id in attacker_hosts)
        assert covered / len(victims) > 0.5

    def test_scaled_out_victims_land_on_same_base_hosts(self, tiny_env):
        """Scale-out replacements stay on the victim's base hosts, so a
        resident attacker keeps covering new instances without re-priming."""
        orch = tiny_env.orchestrator
        service = orch.deploy_service(
            "account-2", ServiceConfig(name="grow", max_instances=40)
        )
        orch.scale_to(service, 5)
        small = {i.host_id for i in orch.alive_instances(service)}
        orch.scale_to(service, 40)
        big = {i.host_id for i in orch.alive_instances(service)}
        base = set(tiny_env.datacenter.shard_hosts(1))
        assert small <= base
        assert big <= base

    def test_residency_plus_victim_churn(self, tiny_env):
        """Attacker holds residency with keep-alive blips while the victim
        churns through two full scale cycles."""
        attacker_hosts, outcome = prime_attacker(tiny_env)
        for name in outcome.service_names:
            tiny_env.attacker.disconnect(name)
        maintainer = ResidencyMaintainer(
            tiny_env.attacker,
            outcome.service_names,
            instances_per_service=16,
            refresh_period_s=90.0,
        )
        orch = tiny_env.orchestrator
        service = orch.deploy_service(
            "account-2", ServiceConfig(name="cycler", max_instances=40)
        )
        for _cycle in range(2):
            orch.scale_to(service, 30)
            maintainer.maintain(duration_s=10 * units.MINUTE)
            orch.scale_to(service, 3)
            maintainer.maintain(duration_s=10 * units.MINUTE)
        victims = orch.alive_instances(service)
        attacker_now = {
            instance.host_id
            for name in outcome.service_names
            for instance in orch.alive_instances(
                orch.services[f"account-1/{name}"]
            )
        }
        covered = sum(1 for i in victims if i.host_id in attacker_now)
        assert victims
        assert covered / len(victims) > 0.5
