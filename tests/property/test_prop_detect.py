"""Property-based tests for activity-episode detection."""

from hypothesis import given, strategies as st

from repro.core.detect import ActivityDetector, ActivitySample

level_series = st.lists(st.integers(0, 4), min_size=1, max_size=80)


def detect(levels, threshold=1, min_consecutive=2):
    detector = ActivityDetector.__new__(ActivityDetector)
    detector.threshold = threshold
    detector.min_consecutive = min_consecutive
    samples = [ActivitySample(at=float(i), level=v) for i, v in enumerate(levels)]
    return detector._episodes(samples)


@given(level_series)
def test_episodes_are_ordered_and_disjoint(levels):
    episodes = detect(levels)
    for a, b in zip(episodes, episodes[1:]):
        assert a.end < b.start
    for episode in episodes:
        assert episode.start <= episode.end


@given(level_series, st.integers(1, 5))
def test_episode_bounds_lie_on_active_samples(levels, min_consecutive):
    episodes = detect(levels, min_consecutive=min_consecutive)
    active_times = {float(i) for i, v in enumerate(levels) if v >= 1}
    for episode in episodes:
        assert episode.start in active_times
        assert episode.end in active_times
        # Length satisfies the debounce.
        covered = [t for t in active_times if episode.start <= t <= episode.end]
        assert len(covered) >= min_consecutive


@given(level_series)
def test_higher_threshold_never_adds_episodes(levels):
    low = detect(levels, threshold=1)
    high = detect(levels, threshold=3)
    # Every high-threshold active moment is active at the low threshold,
    # so high-threshold detection covers a subset of time.
    low_active = sum(e.end - e.start + 1 for e in low)
    high_active = sum(e.end - e.start + 1 for e in high)
    assert high_active <= low_active


@given(level_series, st.integers(1, 6))
def test_stricter_debounce_never_adds_episodes(levels, extra):
    loose = detect(levels, min_consecutive=1)
    strict = detect(levels, min_consecutive=1 + extra)
    assert len(strict) <= len(loose)


@given(level_series)
def test_all_zero_series_detects_nothing(levels):
    silent = [0] * len(levels)
    assert detect(silent) == []
