"""§5.2 Strategy 1: naive instance launching.

Paper: despite 4,800 attacker instances, coverage is zero everywhere except
Account 2 in us-west1 (100%, shared base hosts by luck) and Account 3 in
us-central1 (81%).
"""

from repro.experiments import coverage as cov
from repro.experiments.report import format_series, pct

from benchmarks.conftest import run_once

CONFIG = cov.MatrixConfig(strategy="naive", repetitions=2)


def test_sec52_naive_strategy(benchmark, emit, runner):
    cells = run_once(benchmark, lambda: cov.run_matrix(CONFIG, runner=runner))

    rows = []
    for (region, account, _n, _s), cell in sorted(cells.items()):
        paper = cov.PAPER_NAIVE_GEN1[(region, account)]
        rows.append((region, account, pct(paper), pct(cell.mean)))
    emit(
        format_series(
            "§5.2 — naive launching strategy (4,800 instances, cold services)",
            ("region", "account", "paper", "measured"),
            rows,
        )
    )

    for (region, account, _n, _s), cell in cells.items():
        paper = cov.PAPER_NAIVE_GEN1[(region, account)]
        assert abs(cell.mean - paper) < 0.15, (region, account, cell.mean, paper)

    # The decisive qualitative pattern:
    assert cells[("us-east1", "account-2", 100, "Small")].mean == 0.0
    assert cells[("us-east1", "account-3", 100, "Small")].mean == 0.0
    assert cells[("us-west1", "account-3", 100, "Small")].mean == 0.0
    assert cells[("us-west1", "account-2", 100, "Small")].mean > 0.95
    assert cells[("us-central1", "account-3", 100, "Small")].mean > 0.6
    assert cells[("us-central1", "account-2", 100, "Small")].mean < 0.15
