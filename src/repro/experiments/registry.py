"""Registry mapping experiment ids to runnable report generators.

Used by the CLI (``python -m repro``) and handy in notebooks:

>>> from repro.experiments.registry import run_experiment
>>> print(run_experiment("exp1", scale="quick"))    # doctest: +SKIP

Each entry regenerates one table or figure of the paper and returns the
formatted paper-vs-measured text.  ``scale="quick"`` shrinks repetition
counts (not the 800-instance launches themselves) so every experiment
finishes in seconds; ``scale="full"`` matches the benchmark harness.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    attack_cost,
    census,
    coverage,
    expiration,
    fingerprint_accuracy,
    frequency_noise,
    gen2_accuracy,
    helper_episodes,
    idle_termination,
    launch_behavior,
    verification_cost,
    victim_locator,
)
from repro.experiments.base import default_env, host_coverage
from repro.experiments.report import ComparisonRow, format_comparison, format_series, pct
from repro.runner import RunnerConfig
from repro.telemetry import current_telemetry


def _reps(scale: str, full: int, quick: int = 1) -> int:
    return full if scale == "full" else quick


def _fig4(scale: str, runner: RunnerConfig | None = None) -> str:
    from repro.analysis.asciichart import render_series

    config = fingerprint_accuracy.AccuracyConfig(
        regions=("us-east1", "us-central1", "us-west1") if scale == "full" else ("us-east1",),
        repetitions=_reps(scale, 2),
    )
    result = fingerprint_accuracy.run(config, runner=runner)
    table = format_series(
        "Figure 4 — fingerprint accuracy vs p_boot",
        ("p_boot_s", "FMI", "precision", "recall"),
        [(p.p_boot, p.fmi_mean, p.precision_mean, p.recall_mean) for p in result.points],
    )
    chart = render_series(
        [p.p_boot for p in result.points],
        [p.fmi_mean for p in result.points],
        log_x=True,
        title="FMI vs p_boot (log x)",
        x_label="p_boot (s)",
        y_label="FMI",
    )
    return table + "\n\n" + chart


def _fig5(scale: str, runner: RunnerConfig | None = None) -> str:
    config = expiration.ExpirationConfig(
        regions=("us-east1", "us-central1", "us-west1") if scale == "full" else ("us-east1",),
        duration_days=7.0 if scale == "full" else 3.0,
        cadence_hours=1.0 if scale == "full" else 3.0,
    )
    result = expiration.run(config, runner=runner)
    grid = (1.0, 2.0, 3.0, 5.0, 7.0)
    rows = []
    for region in result.regions:
        rows.extend(
            (region.region, d, f) for d, f in zip(grid, region.cdf(grid))
        )
    header = format_series(
        "Figure 5 — CDF of fingerprint expiration time", ("region", "days", "expired"), rows
    )
    tail = format_comparison(
        "Figure 5 — headline",
        [
            ComparisonRow("min |r|", ">= 0.9997", f"{result.min_abs_r:.5f}"),
            ComparisonRow("days to 10% expired", "~2", f"{result.mean_days_to_10pct_expired:.2f}"),
        ],
    )
    from repro.analysis.asciichart import render_cdf

    clipped = [
        min(days, 14.0)
        for region in result.regions
        for days in region.expiration_days
    ]
    chart = render_cdf(clipped, title="expiration CDF (days, clipped at 14)")
    return header + "\n\n" + tail + "\n\n" + chart


def _fig6(scale: str, runner: RunnerConfig | None = None) -> str:
    from repro.analysis.asciichart import render_series

    result = idle_termination.run(idle_termination.IdleTerminationConfig())
    table = format_series(
        "Figure 6 — idle instances vs minutes since disconnect",
        ("minutes", "idle"),
        [(t, n) for t, n in result.series if t == int(t)],
    )
    chart = render_series(
        [t for t, _n in result.series],
        [n for _t, n in result.series],
        title="idle instances vs minutes since disconnect",
        x_label="minutes",
        y_label="instances",
    )
    return table + "\n\n" + chart


def _exp1(scale: str, runner: RunnerConfig | None = None) -> str:
    result = launch_behavior.run_distribution(
        launch_behavior.DistributionConfig(
            ground_truth="covert" if scale == "full" else "oracle"
        ),
        runner=runner,
    )
    return format_comparison(
        "Experiment 1 — 800 instances of one service",
        [
            ComparisonRow("hosts", "75", str(result.n_hosts)),
            ComparisonRow(
                "instances per host", "10-11",
                f"{result.min_per_host}-{result.max_per_host}",
            ),
        ],
    )


def _fig7(scale: str, runner: RunnerConfig | None = None) -> str:
    result = launch_behavior.run_launch_series(
        launch_behavior.LaunchSeriesConfig(), runner=runner
    )
    return format_series(
        "Figure 7 — cold launches, 45-min interval",
        ("launch", "hosts", "cumulative"),
        [(i + 1, p, c) for i, (p, c) in enumerate(zip(result.per_launch, result.cumulative))],
    )


def _fig8(scale: str, runner: RunnerConfig | None = None) -> str:
    result = launch_behavior.run_launch_series(
        launch_behavior.LaunchSeriesConfig(account_pattern=(1, 1, 2, 2, 3, 3)),
        runner=runner,
    )
    return format_series(
        "Figure 8 — three accounts, step pattern",
        ("launch", "account", "hosts", "cumulative"),
        [
            (i + 1, a, p, c)
            for i, (a, p, c) in enumerate(
                zip(result.accounts, result.per_launch, result.cumulative)
            )
        ],
    )


def _fig9(scale: str, runner: RunnerConfig | None = None) -> str:
    result = launch_behavior.run_launch_series(
        launch_behavior.LaunchSeriesConfig(interval=600.0), runner=runner
    )
    return format_series(
        "Figure 9 — hot launches, 10-min interval",
        ("launch", "hosts", "cumulative"),
        [(i + 1, p, c) for i, (p, c) in enumerate(zip(result.per_launch, result.cumulative))],
    )


def _fig10(scale: str, runner: RunnerConfig | None = None) -> str:
    episodes = 6 if scale == "full" else 3
    result = helper_episodes.run(helper_episodes.EpisodesConfig(episodes=episodes))
    return format_series(
        "Figure 10 — helper hosts per episode",
        ("episode", "helpers", "cumulative"),
        [
            (i + 1, p, c)
            for i, (p, c) in enumerate(
                zip(result.per_episode_helpers, result.cumulative_helpers)
            )
        ],
    )


def _coverage(
    scale: str,
    runner: RunnerConfig | None,
    strategy: str,
    generation: str,
    paper: dict,
) -> str:
    config = coverage.MatrixConfig(
        strategy=strategy,
        generation=generation,
        repetitions=_reps(scale, 2),
        ground_truth="covert" if scale == "full" else "oracle",
    )
    cells = coverage.run_matrix(config, runner=runner)
    rows = [
        (region, account, pct(paper[(region, account)]), pct(cell.mean))
        for (region, account, _n, _s), cell in sorted(cells.items())
    ]
    return format_series(
        f"Victim coverage — {strategy} strategy, {generation}",
        ("region", "account", "paper", "measured"),
        rows,
    )


def _fig11a(scale: str, runner: RunnerConfig | None = None) -> str:
    return _coverage(scale, runner, "optimized", "gen1", coverage.PAPER_OPTIMIZED_GEN1)


def _naive(scale: str, runner: RunnerConfig | None = None) -> str:
    return _coverage(scale, runner, "naive", "gen1", coverage.PAPER_NAIVE_GEN1)


def _gen2cov(scale: str, runner: RunnerConfig | None = None) -> str:
    return _coverage(scale, runner, "optimized", "gen2", coverage.PAPER_OPTIMIZED_GEN2)


def _fig12(scale: str, runner: RunnerConfig | None = None) -> str:
    regions = (
        ("us-east1", "us-central1", "us-west1") if scale == "full" else ("us-west1",)
    )
    summary = census.run(census.CensusConfig(regions=regions), runner=runner)
    rows = []
    for region in summary.regions:
        rows.append(
            ComparisonRow(
                f"{region.region}: census / attacker share",
                f"{census.PAPER_CENSUS[region.region]} / "
                f"{100 * census.PAPER_ATTACKER_SHARE[region.region]:.0f}%",
                f"{region.total_hosts} / {100 * region.attacker_share:.0f}%",
            )
        )
    return format_comparison("Figure 12 — datacenter census", rows)


def _sec42(scale: str, runner: RunnerConfig | None = None) -> str:
    regions = (
        ("us-east1", "us-central1", "us-west1") if scale == "full" else ("us-east1",)
    )
    result = frequency_noise.run(
        frequency_noise.FrequencyNoiseConfig(regions=regions), runner=runner
    )
    return format_comparison(
        "§4.2 — measured-frequency noise",
        [
            ComparisonRow("hosts", "586", str(result.n_hosts)),
            ComparisonRow(
                "problematic fraction", "~10%", f"{100 * result.problematic_fraction:.0f}%"
            ),
            ComparisonRow("quiet fraction", "most", f"{100 * result.quiet_fraction:.0f}%"),
        ],
    )


def _sec43(scale: str, runner: RunnerConfig | None = None) -> str:
    result = verification_cost.run(verification_cost.VerificationCostConfig())
    return format_comparison(
        "§4.3 — verification cost (800 instances)",
        [
            ComparisonRow("pairwise tests", "319,600", f"{result.pairwise_tests_modeled:,}"),
            ComparisonRow("pairwise time / cost", "8.9 h / $645",
                          f"{result.pairwise_seconds_modeled / 3600:.1f} h / "
                          f"${result.pairwise_usd_modeled:.0f}"),
            ComparisonRow("scalable tests", "-", str(result.scalable_tests)),
            ComparisonRow("scalable time / cost", "1-2 min / $1-3",
                          f"{result.scalable_seconds / 60:.1f} min / "
                          f"${result.scalable_usd:.2f}"),
            ComparisonRow("SIE eliminated", "0", str(result.sie_eliminated)),
        ],
    )


def _sec45(scale: str, runner: RunnerConfig | None = None) -> str:
    config = gen2_accuracy.Gen2AccuracyConfig(
        regions=("us-east1", "us-central1", "us-west1") if scale == "full" else ("us-east1",),
        repetitions=_reps(scale, 2),
        ground_truth="covert" if scale == "full" else "oracle",
    )
    result = gen2_accuracy.run(config, runner=runner)
    return format_comparison(
        "§4.5 — Gen 2 fingerprint accuracy",
        [
            ComparisonRow("FMI", "0.66", f"{result.fmi_mean:.2f}"),
            ComparisonRow("precision", "0.48", f"{result.precision_mean:.2f}"),
            ComparisonRow("recall", "1.00", f"{result.recall_mean:.2f}"),
            ComparisonRow(
                "hosts per fingerprint", "2.0",
                f"{result.hosts_per_fingerprint_mean:.1f}",
            ),
        ],
    )


def _surveillance(scale: str, runner: RunnerConfig | None = None) -> str:
    from repro.experiments import surveillance

    config = surveillance.SurveillanceConfig(
        duration_hours=24.0 if scale == "full" else 6.0
    )
    result = surveillance.run(config)
    body = format_series(
        "Surveillance — sustained coverage of an autoscaling victim",
        ("hour", "victim_instances", "coverage"),
        result.series,
    )
    tail = format_comparison(
        "Surveillance — cost",
        [
            ComparisonRow("setup", "-", f"${result.setup_cost_usd:.2f}"),
            ComparisonRow(
                "maintenance",
                "-",
                f"${result.maintenance_cost_usd:.2f} over "
                f"{config.duration_hours:.0f} h",
            ),
            ComparisonRow("minimum coverage", "-", pct(result.min_coverage)),
        ],
    )
    return body + "\n\n" + tail


def _defenses(scale: str, runner: RunnerConfig | None = None) -> str:
    import dataclasses

    from repro.cloud.topology import REGION_PROFILES
    from repro.cloud.services import ServiceConfig
    from repro.core.attack.strategies import optimized_launch
    from repro.sandbox.base import TscPolicy

    rows = []
    for defense, policy in (
        ("none", TscPolicy.NATIVE),
        ("none", TscPolicy.EMULATED),
        ("randomized_base", TscPolicy.NATIVE),
        ("tenant_isolation", TscPolicy.NATIVE),
    ):
        profile = dataclasses.replace(REGION_PROFILES["us-east1"], defense=defense)
        env = default_env(profile=profile, seed=990, tsc_policy=policy)
        outcome = optimized_launch(env.attacker)
        victim = env.victim("account-2")
        victim_handles = victim.connect(
            victim.deploy(ServiceConfig(name="victim")), 100
        )
        coverage, _ = host_coverage(env, outcome.handles, victim_handles)
        label = defense if policy is TscPolicy.NATIVE else "tsc_emulation"
        rows.append(ComparisonRow(label, "-", pct(coverage)))
    return format_comparison("§6 — attack coverage under each defense", rows)


def _victim_locator(scale: str, runner: RunnerConfig | None = None) -> str:
    from repro.analysis.asciichart import render_series

    config = victim_locator.LocatorConfig(
        fleet_sizes=(24, 30, 40, 60) if scale == "full" else (24, 30),
        repetitions=_reps(scale, 4, 2),
    )
    summary = victim_locator.run(config, runner=runner)
    table = format_series(
        "Victim locator — localization cost vs fleet size",
        ("hosts", "candidates", "rounds", "probes", "success"),
        [
            (
                p.n_hosts,
                p.mean_candidates,
                p.mean_rounds,
                p.mean_probes,
                pct(p.success_rate),
            )
            for p in summary.points
        ],
    )
    chart = render_series(
        [p.n_hosts for p in summary.points],
        [p.mean_probes for p in summary.points],
        title="localization probes vs fleet size",
        x_label="hosts",
        y_label="probes",
    )
    tradeoff = victim_locator.run_tradeoff(config, runner=runner)
    tail = format_series(
        "Victim locator — coverage/latency tradeoff (probe noise 5%)",
        ("probes/measure", "success", "probe_count", "locate_s"),
        [
            (probes, pct(p.success_rate), p.mean_probes, p.mean_locate_seconds)
            for probes, p in tradeoff.items()
        ],
    )
    return table + "\n\n" + chart + "\n\n" + tail


def _background_load(scale: str, runner: RunnerConfig | None = None) -> str:
    from repro.analysis.asciichart import render_series
    from repro.experiments import background_load

    config = background_load.BackgroundLoadConfig(
        tenant_counts=(
            (0, 450, 900, 1000, 1100) if scale == "full" else (0, 900, 1100)
        ),
        repetitions=_reps(scale, 3, 2),
    )
    summary = background_load.run(config, runner=runner)
    table = format_series(
        "Background load — attack coverage vs region utilization (extension)",
        ("tenants", "utilization", "coverage", "attacker_hosts", "bg_instances", "blocked"),
        [
            (
                p.n_tenants,
                pct(p.mean_utilization),
                pct(p.mean_coverage),
                p.mean_attacker_hosts,
                int(p.mean_background_instances),
                p.attack_failures,
            )
            for p in summary.points
        ],
    )
    chart = render_series(
        [100 * p.mean_utilization for p in summary.points],
        [100 * p.mean_coverage for p in summary.points],
        title="coverage (%) vs pool utilization (%)",
        x_label="utilization %",
        y_label="coverage %",
    )
    return table + "\n\n" + chart


def _channel_matrix(scale: str, runner: RunnerConfig | None = None) -> str:
    from repro.analysis.asciichart import render_series
    from repro.experiments import channel_matrix

    config = channel_matrix.MatrixConfig(repetitions=_reps(scale, 3, 1))
    summary = channel_matrix.run(config, runner=runner)
    short = {"aws_lambda_like": "aws-lambda", "azure_functions_like": "azure-func"}
    table = format_series(
        "Channel x platform matrix — co-location accuracy and cost (extension)",
        ("channel", "platform", "fmi", "precision", "recall", "tests", "busy_s"),
        [
            (
                p.channel,
                short.get(p.platform, p.platform),
                f"{p.mean_fmi:.3f}",
                pct(p.mean_precision),
                pct(p.mean_recall),
                f"{p.mean_tests:.1f}",
                f"{p.mean_busy_seconds:.1f}",
            )
            for p in summary.points
        ],
    )
    chart = render_series(
        [p.mean_busy_seconds for p in summary.points],
        [100.0 * p.mean_fmi for p in summary.points],
        title="accuracy (FMI %) vs channel busy time (s), all matrix cells",
        x_label="busy_s",
        y_label="FMI %",
    )
    return table + "\n\n" + chart


def _cost(scale: str, runner: RunnerConfig | None = None) -> str:
    result = attack_cost.run(attack_cost.AttackCostConfig(repetitions=_reps(scale, 2)))
    return format_comparison(
        "§5.2 — optimized attack cost",
        [
            ComparisonRow(
                region, f"${attack_cost.PAPER_COST_USD[region]:.0f}",
                f"${result.mean_cost_usd[region]:.2f}",
            )
            for region in result.mean_cost_usd
        ],
    )


#: Experiment id -> (description, runner function).
EXPERIMENTS: dict[str, tuple[str, Callable[..., str]]] = {
    "fig4": ("Gen 1 fingerprint accuracy vs p_boot", _fig4),
    "fig5": ("fingerprint expiration CDF", _fig5),
    "fig6": ("idle instance termination", _fig6),
    "exp1": ("instance distribution over hosts", _exp1),
    "fig7": ("cold launches: base hosts", _fig7),
    "fig8": ("three accounts: step pattern", _fig8),
    "fig9": ("hot launches: helper hosts", _fig9),
    "fig10": ("helper footprints across services", _fig10),
    "fig11a": ("victim coverage, optimized strategy", _fig11a),
    "fig12": ("datacenter census", _fig12),
    "sec42": ("measured-frequency noise", _sec42),
    "sec43": ("verification cost comparison", _sec43),
    "sec45": ("Gen 2 fingerprint accuracy", _sec45),
    "naive": ("victim coverage, naive strategy", _naive),
    "gen2cov": ("victim coverage, Gen 2", _gen2cov),
    "cost": ("attack cost per region", _cost),
    "surveillance": ("all-day sustained co-location (extension)", _surveillance),
    "victim_locator": ("uncontrolled-victim localization (extension)", _victim_locator),
    "background_load": ("attack coverage vs background load (extension)", _background_load),
    "channel_matrix": ("channel x platform accuracy/cost matrix (extension)", _channel_matrix),
    "defenses": ("§6 defense evaluation (extension)", _defenses),
}


def run_experiment(
    experiment_id: str,
    scale: str = "quick",
    runner: RunnerConfig | None = None,
) -> str:
    """Run one registered experiment and return its formatted report.

    Pass a :class:`~repro.runner.RunnerConfig` to execute the experiment's
    independent simulation cells in worker processes and/or reuse cached
    cells; its timing and cache-hit counters are appended to the report.

    Raises
    ------
    KeyError
        For unknown experiment ids; ``EXPERIMENTS`` lists the valid ones.
    """
    if scale not in ("quick", "full"):
        raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")
    try:
        _description, runner_fn = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None
    with current_telemetry().span(
        "experiment", experiment=experiment_id, scale=scale
    ):
        report = runner_fn(scale, runner)
    if runner is not None and runner.stats.cells:
        report += f"\n\n[runner] {runner.stats.summary()}"
    return report
