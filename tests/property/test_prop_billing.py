"""Property-based tests for the billing model."""

import pytest
from hypothesis import given, strategies as st

from repro.cloud.billing import BillingMeter, PricingRates, pairwise_test_cost

positive_floats = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
sizes = st.tuples(
    st.floats(min_value=0.25, max_value=8.0),
    st.floats(min_value=0.125, max_value=32.0),
)


@given(st.lists(st.tuples(sizes, positive_floats), max_size=30))
def test_meter_is_additive(charges):
    whole = BillingMeter()
    for (vcpus, mem), seconds in charges:
        whole.charge_active(vcpus, mem, seconds)
    total_by_parts = 0.0
    for (vcpus, mem), seconds in charges:
        part = BillingMeter()
        part.charge_active(vcpus, mem, seconds)
        total_by_parts += part.total_usd
    assert whole.total_usd == pytest.approx(total_by_parts, rel=1e-9, abs=1e-12)


@given(sizes, positive_floats, positive_floats)
def test_cost_monotone_in_time(size, t1, t2):
    vcpus, mem = size
    rates = PricingRates()
    low, high = sorted((t1, t2))
    assert rates.active_cost(vcpus, mem, low) <= rates.active_cost(vcpus, mem, high)


@given(sizes, sizes, positive_floats)
def test_cost_monotone_in_resources(size_a, size_b, seconds):
    rates = PricingRates()
    (cpu_a, mem_a), (cpu_b, mem_b) = size_a, size_b
    if cpu_a <= cpu_b and mem_a <= mem_b:
        assert rates.active_cost(cpu_a, mem_a, seconds) <= rates.active_cost(
            cpu_b, mem_b, seconds
        )


@given(st.integers(min_value=2, max_value=2000), st.floats(min_value=0.01, max_value=5.0))
def test_pairwise_cost_model_consistency(n, per_test):
    n_tests, seconds, usd = pairwise_test_cost(n, per_test)
    assert n_tests == n * (n - 1) // 2
    assert seconds == pytest.approx(n_tests * per_test)
    assert usd >= 0.0
    # Doubling the fleet more than triples the bill (superlinear).
    _, _, usd2 = pairwise_test_cost(2 * n, per_test)
    assert usd2 > 3 * usd
