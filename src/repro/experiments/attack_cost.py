"""§5.2: financial cost of the optimized co-location attack.

The paper's configuration (six attacker services, six launches per service,
800 instances per launch, disconnecting between launches so only active time
bills) costs on average 24 / 23 / 27 USD in us-east1 / us-central1 /
us-west1.  This experiment measures our simulated bill with the published
pricing model, and ablates the two main knobs (services, launches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.attack.strategies import optimized_launch
from repro.experiments.base import default_env

PAPER_COST_USD = {"us-east1": 24.0, "us-central1": 23.0, "us-west1": 27.0}


@dataclass(frozen=True)
class AttackCostConfig:
    """Configuration for the attack-cost measurement."""

    regions: tuple[str, ...] = ("us-east1", "us-central1", "us-west1")
    repetitions: int = 3
    n_services: int = 6
    launches: int = 6
    instances: int = 800
    base_seed: int = 1000


@dataclass
class AttackCostResult:
    """Measured attack costs per region."""

    mean_cost_usd: dict[str, float] = field(default_factory=dict)
    mean_hosts: dict[str, float] = field(default_factory=dict)


def run(config: AttackCostConfig = AttackCostConfig()) -> AttackCostResult:
    """Measure the optimized strategy's bill in each region."""
    result = AttackCostResult()
    for region in config.regions:
        costs, hosts = [], []
        for rep in range(config.repetitions):
            env = default_env(region, seed=config.base_seed + rep)
            outcome = optimized_launch(
                env.attacker,
                n_services=config.n_services,
                launches=config.launches,
                instances_per_service=config.instances,
            )
            costs.append(outcome.cost_usd)
            hosts.append(len(outcome.apparent_hosts))
        result.mean_cost_usd[region] = float(np.mean(costs))
        result.mean_hosts[region] = float(np.mean(hosts))
    return result


@dataclass(frozen=True)
class AblationConfig:
    """Sweep of the strategy's knobs: cost vs. footprint trade-off."""

    region: str = "us-east1"
    services_grid: tuple[int, ...] = (1, 2, 4, 6)
    launches_grid: tuple[int, ...] = (2, 4, 6)
    instances: int = 800
    seed: int = 1010


def run_ablation(config: AblationConfig = AblationConfig()) -> dict[tuple[int, int], tuple[float, int]]:
    """Sweep (services, launches); returns (cost USD, apparent hosts)."""
    results: dict[tuple[int, int], tuple[float, int]] = {}
    for n_services in config.services_grid:
        for launches in config.launches_grid:
            env = default_env(config.region, seed=config.seed)
            outcome = optimized_launch(
                env.attacker,
                n_services=n_services,
                launches=launches,
                instances_per_service=config.instances,
            )
            results[(n_services, launches)] = (
                outcome.cost_usd,
                len(outcome.apparent_hosts),
            )
    return results
