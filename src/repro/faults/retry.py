"""Bounded retry-with-backoff policies for the recovery half of faults.

Injection without recovery just crashes runs earlier; the policies here
bound how hard each layer fights back.  One frozen :class:`RetryPolicy`
describes a whole retry discipline — how many times to retry and how long
to back off between attempts — and is shared by:

* the orchestrator (per-instance launch retries, backoff in simulated
  time),
* :class:`~repro.cloud.api.FaaSClient` (whole-launch retries after the
  orchestrator gives up),
* :class:`~repro.core.verification.ScalableVerifier` (re-running
  inconsistent CTests), and
* :func:`~repro.runner.pool.run_cells` (re-executing failed cells, via
  ``RunnerConfig.max_retries``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultSpecError


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a failed operation.

    Attributes
    ----------
    max_retries:
        Retries *after* the initial attempt; 0 disables retrying.
    backoff_seconds:
        Sleep before the first retry.
    backoff_multiplier:
        Exponential growth factor for subsequent retries.
    """

    max_retries: int = 1
    backoff_seconds: float = 0.5
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultSpecError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_seconds < 0.0:
            raise FaultSpecError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.backoff_multiplier < 1.0:
            raise FaultSpecError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        return self.backoff_seconds * self.backoff_multiplier**attempt


#: Orchestrator default: two launch retries, 0.5 s / 1 s backoff.
DEFAULT_LAUNCH_RETRY = RetryPolicy(max_retries=2, backoff_seconds=0.5)

#: Verifier default: exactly the historical single re-run of an
#: inconsistent CTest, so accounting is unchanged when faults are off.
DEFAULT_CTEST_RETRY = RetryPolicy(max_retries=1, backoff_seconds=0.0)

#: Target Victim Locator default: two full search restarts after a failed
#: confirmation (probe noise is strictly additive, so a wrong descent is
#: always caught at confirmation and a restart draws fresh probe faults).
DEFAULT_LOCATE_RETRY = RetryPolicy(max_retries=2, backoff_seconds=0.0)
