"""Small distribution utilities shared by experiments and reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def empirical_cdf(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(x, F(x))`` arrays of the empirical CDF of ``values``.

    ``x`` is sorted ascending and ``F(x)`` gives the fraction of samples
    less than or equal to each ``x``.
    """
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        raise ValueError("cannot build a CDF from zero samples")
    fractions = np.arange(1, array.size + 1) / array.size
    return array, fractions


def cdf_at(values: Sequence[float], points: Sequence[float]) -> list[float]:
    """Evaluate the empirical CDF of ``values`` at the given ``points``."""
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        raise ValueError("cannot evaluate a CDF with zero samples")
    return [float(np.searchsorted(array, p, side="right")) / array.size for p in points]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a sample of floats."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarize zero samples")
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        median=float(np.median(array)),
        maximum=float(array.max()),
    )
