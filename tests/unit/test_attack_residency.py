"""Unit tests for residency maintenance (keep-alive loops)."""

import pytest

from repro import units
from repro.cloud.services import ServiceConfig
from repro.core.attack.residency import ResidencyMaintainer


def deploy_fleet(env, n_services=2, instances=10):
    client = env.attacker
    names = []
    for i in range(n_services):
        name = client.deploy(ServiceConfig(name=f"res-{i}"))
        client.connect(name, instances)
        client.disconnect(name)
        names.append(name)
    return client, names


class TestResidencyMaintainer:
    def test_keep_alive_preserves_fleet(self, tiny_env):
        client, names = deploy_fleet(tiny_env)
        maintainer = ResidencyMaintainer(
            client, names, instances_per_service=10, refresh_period_s=100.0
        )
        report = maintainer.maintain(duration_s=30 * units.MINUTE)
        assert report.final_survival == 1.0
        assert report.refreshes >= 15

    def test_without_keep_alive_fleet_dies(self, tiny_env):
        client, names = deploy_fleet(tiny_env)
        service = client._service(names[0])
        tiny_env.clock.sleep(15 * units.MINUTE)
        assert tiny_env.orchestrator.alive_instances(service) == []

    def test_slow_refresh_loses_instances(self, tiny_env):
        """Refreshing slower than the idle window lets the reaper in."""
        client, names = deploy_fleet(tiny_env)
        profile = tiny_env.datacenter.profile
        maintainer = ResidencyMaintainer(
            client,
            names,
            instances_per_service=10,
            refresh_period_s=profile.idle_deadline + 60.0,
        )
        report = maintainer.maintain(duration_s=40 * units.MINUTE)
        assert report.final_survival < 1.0

    def test_cost_accrues_only_for_blips(self, tiny_env):
        client, names = deploy_fleet(tiny_env)
        maintainer = ResidencyMaintainer(
            client, names, instances_per_service=10,
            refresh_period_s=100.0, hold_s=1.0,
        )
        report = maintainer.maintain(duration_s=1 * units.HOUR)
        # 20 instances active ~1-2 s every 100 s: well under always-on cost.
        always_on = 20 * 3600 * (1.0 * 0.000024 + 0.512 * 0.0000025)
        assert 0 < report.cost_usd < always_on / 10
        assert report.cost_per_hour_usd < 0.2

    def test_validation(self, tiny_env):
        client, names = deploy_fleet(tiny_env)
        with pytest.raises(ValueError):
            ResidencyMaintainer(client, names, 10, refresh_period_s=0.0)
        with pytest.raises(ValueError):
            ResidencyMaintainer(client, [], 10)
