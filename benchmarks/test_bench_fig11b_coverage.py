"""Figure 11b: victim instance coverage vs. victim container size (Table 1).

Paper: varying the victim size across Pico/Small/Medium/Large (100
instances) does not significantly change coverage — services of the same
account share base hosts regardless of resource specification.
"""

import numpy as np

from repro.experiments import coverage as cov
from repro.experiments.report import format_series, pct

from benchmarks.conftest import run_once

CONFIG = cov.MatrixConfig(
    victim_counts=(100,),
    victim_sizes=("Pico", "Small", "Medium", "Large"),
    repetitions=2,  # paper: 3
)


def test_fig11b_victim_size_sweep(benchmark, emit, runner):
    cells = run_once(benchmark, lambda: cov.run_matrix(CONFIG, runner=runner))

    rows = []
    for (region, account, _n, size), cell in sorted(cells.items()):
        paper = cov.PAPER_OPTIMIZED_GEN1[(region, account)]
        rows.append((region, account, size, pct(paper), pct(cell.mean)))
    emit(
        format_series(
            "Figure 11b — victim coverage vs container size (Table 1 sizes)",
            ("region", "account", "size", "paper", "measured"),
            rows,
        )
    )

    for (region, account, _n, _size), cell in cells.items():
        paper = cov.PAPER_OPTIMIZED_GEN1[(region, account)]
        assert abs(cell.mean - paper) < 0.2, (region, account, cell.mean, paper)

    # Victim size has no significant influence on coverage.
    for region in CONFIG.regions:
        for account in CONFIG.victim_accounts:
            means = [
                cells[(region, account, 100, size)].mean
                for size in CONFIG.victim_sizes
            ]
            assert float(np.ptp(means)) < 0.25, (region, account, means)
