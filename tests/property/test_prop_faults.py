"""Property-based tests for batch-planning safety and fault determinism.

The batch planner's one safety invariant: two group tests may share a
batch only when their groups are *guaranteed* host-disjoint.  With Gen 1
fingerprints that guarantee comes solely from distinct ``model_key``
values, so within a batch every key must be unique and a key-less
(``model_key=None``) group must never have company.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import given, settings, strategies as st

from repro.core.covert import RngCovertChannel
from repro.core.verification import ScalableVerifier, _GroupTask
from repro.faults import FaultPlan, FaultSpec


@dataclass(frozen=True)
class FakeHandle:
    """Minimal stand-in for an InstanceHandle."""

    instance_id: str


model_keys = st.one_of(st.none(), st.sampled_from(["xeon", "epyc", "ice", "milan"]))


@st.composite
def batch_requests(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    requests = []
    for index in range(n):
        key = draw(model_keys)
        handles = [FakeHandle(f"g{index}-{j}") for j in range(draw(st.integers(1, 3)))]
        requests.append((_GroupTask(handles, key), handles))
    return requests


@given(batch_requests())
@settings(max_examples=120, deadline=None)
def test_no_batch_contains_groups_that_could_share_a_host(requests):
    verifier = ScalableVerifier(RngCovertChannel())
    batches = verifier._plan_batches(requests)
    for batch in batches:
        keys = [task.model_key for task, _test in batch]
        if any(key is None for key in keys):
            # A key-less group carries no disjointness guarantee against
            # anyone: it must be tested in a batch of its own.
            assert len(batch) == 1
        else:
            # Same model key == possibly the same host: never batched.
            assert len(keys) == len(set(keys))


@given(batch_requests())
@settings(max_examples=60, deadline=None)
def test_every_request_planned_exactly_once(requests):
    verifier = ScalableVerifier(RngCovertChannel())
    batches = verifier._plan_batches(requests)
    planned = [task for batch in batches for task, _test in batch]
    assert sorted(map(id, planned)) == sorted(id(task) for task, _test in requests)


fault_specs = st.builds(
    FaultSpec,
    launch_error_rate=st.floats(0.0, 1.0),
    ctest_noise_rate=st.floats(0.0, 1.0),
    ctest_death_rate=st.floats(0.0, 1.0),
    cell_error_rate=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**31),
)

tokens = st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=30)


@given(fault_specs, tokens)
@settings(max_examples=80, deadline=None)
def test_fault_schedule_is_a_pure_function_of_seed_and_token(spec, names):
    """Two plans with the same spec agree on every decision, in any call
    order — the invariant that keeps serial and pooled runs identical."""
    a, b = FaultPlan(spec), FaultPlan(spec)
    forward = [
        (a.launch_fails(t, 0), a.ctest_noise(t), a.ctest_death_round(t, 60))
        for t in names
    ]
    backward = [
        (b.launch_fails(t, 0), b.ctest_noise(t), b.ctest_death_round(t, 60))
        for t in reversed(names)
    ]
    assert forward == list(reversed(backward))


@given(fault_specs, tokens)
@settings(max_examples=80, deadline=None)
def test_death_rounds_stay_in_range(spec, names):
    plan = FaultPlan(spec)
    for token in names:
        when = plan.ctest_death_round(token, 60)
        assert when is None or 0 <= when < 60
