"""Integration tests for the platform-side abuse monitor (§6 defenses)."""

import pytest

from repro.cloud.abuse import AbuseMonitor
from repro.cloud.services import ServiceConfig
from repro.core.covert import RngCovertChannel
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.core.verification import ScalableVerifier, TaggedInstance


def launch_and_tag(env, n, name="svc"):
    client = env.attacker
    service = client.deploy(ServiceConfig(name=name))
    handles = client.connect(service, n)
    pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
    return [TaggedInstance(h, fp, fp.cpu_model) for h, fp in pairs], handles


class TestAbuseMonitor:
    def test_detects_verification_campaign(self, tiny_env):
        monitor = AbuseMonitor(
            tiny_env.orchestrator, host_threshold=5, sample_period_s=0.5
        )
        monitor.attach()
        tagged, _handles = launch_and_tag(tiny_env, 40)
        ScalableVerifier(RngCovertChannel()).verify(tagged)
        assert "account-1" in monitor.flagged_accounts
        verdict = monitor.verdicts[0]
        assert verdict.hosts_in_window >= 5

    def test_benign_tenant_not_flagged(self, tiny_env):
        """A crypto-ish service that briefly pressures the RNG on its own
        couple of hosts stays under the radar."""
        monitor = AbuseMonitor(
            tiny_env.orchestrator, host_threshold=5, sample_period_s=0.5
        )
        monitor.attach()
        client = tiny_env.victim("account-2")
        name = client.deploy(ServiceConfig(name="crypto"))
        handles = client.connect(name, 3)
        for handle in handles:
            handle.run(lambda s: s.start_rng_pressure())
        client.wait(30.0)
        for handle in handles:
            handle.run(lambda s: s.stop_rng_pressure())
        client.wait(120.0)
        assert monitor.flagged_accounts == set()

    def test_quiet_platform_never_flags(self, tiny_env):
        monitor = AbuseMonitor(tiny_env.orchestrator, host_threshold=5)
        monitor.attach()
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="web"))
        client.connect(name, 20)
        client.wait(600.0)
        assert monitor.verdicts == []

    def test_enforcement_stops_the_campaign(self, tiny_env):
        monitor = AbuseMonitor(
            tiny_env.orchestrator,
            host_threshold=5,
            sample_period_s=0.5,
            enforce=True,
        )
        monitor.attach()
        tagged, handles = launch_and_tag(tiny_env, 40)
        # Termination mid-campaign surfaces as dead instances under the
        # verifier's probes.  The channel degrades gracefully — silence
        # reads as a negative verdict — so the run completes instead of
        # crashing, but the campaign itself is still stopped cold.
        report = ScalableVerifier(RngCovertChannel()).verify(tagged)
        assert "account-1" in monitor.flagged_accounts
        assert all(not h.alive for h in handles)
        covered = {h.instance_id for c in report.clusters for h in c}
        assert covered == {t.handle.instance_id for t in tagged}

    def test_detach_stops_observing(self, tiny_env):
        monitor = AbuseMonitor(tiny_env.orchestrator, host_threshold=5)
        monitor.attach()
        monitor.detach()
        tagged, _handles = launch_and_tag(tiny_env, 40)
        ScalableVerifier(RngCovertChannel()).verify(tagged)
        assert monitor.flagged_accounts == set()

    def test_parameter_validation(self, tiny_env):
        with pytest.raises(ValueError):
            AbuseMonitor(tiny_env.orchestrator, sample_period_s=0.0)
        with pytest.raises(ValueError):
            AbuseMonitor(tiny_env.orchestrator, host_threshold=1)

    def test_attach_is_idempotent(self, tiny_env):
        monitor = AbuseMonitor(tiny_env.orchestrator, host_threshold=5)
        monitor.attach()
        monitor.attach()
        monitor.detach()  # must not raise (only one hook registered)
