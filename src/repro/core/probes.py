"""Guest-side probe programs.

These are the programs the attacker ships inside their container image.
Each probe is a plain function taking the sandbox interface and returning a
measurement; run them via
:meth:`repro.cloud.api.InstanceHandle.run`.
"""

from __future__ import annotations

from repro.core import fingerprint as _fingerprint
from repro.core.frequency import FrequencyEstimate, measure_tsc_frequency, reported_tsc_frequency
from repro.sandbox.base import Sandbox


def gen1_fingerprint_probe(sandbox: Sandbox) -> "_fingerprint.Gen1Sample":
    """Take one Gen 1 fingerprinting sample: ``(model, tsc, T_w, f_r)``.

    The TSC and wall-clock reads are taken back to back so the derived boot
    time is internally consistent up to syscall jitter.
    """
    model = sandbox.cpuid_model()
    frequency = reported_tsc_frequency(sandbox)
    tsc = sandbox.rdtsc()
    wall = sandbox.wall_clock()
    return _fingerprint.Gen1Sample(
        cpu_model=model,
        tsc_value=tsc,
        wall_time=wall,
        reported_frequency_hz=frequency,
    )


def gen2_fingerprint_probe(sandbox: Sandbox) -> float:
    """Read the refined host TSC frequency (kHz) from the guest kernel."""
    return sandbox.kernel_tsc_khz()


def measured_frequency_probe(
    sandbox: Sandbox, interval_s: float = 0.1, repetitions: int = 10
) -> FrequencyEstimate:
    """Estimate the actual TSC frequency (the §4.2 alternative method)."""
    return measure_tsc_frequency(sandbox, interval_s=interval_s, repetitions=repetitions)


def environment_probe(sandbox: Sandbox) -> dict[str, object]:
    """Collect what the sandbox willingly reveals (all virtualized).

    Demonstrates why naive host fingerprinting fails on a FaaS platform:
    the sandbox hides the host CPU model in ``/proc`` and virtualizes
    uptime, leaving hardware interaction as the only signal.
    """
    return {
        "generation": sandbox.generation,
        "proc_cpuinfo_model": sandbox.proc_cpuinfo_model(),
        "proc_uptime": sandbox.proc_uptime(),
    }
