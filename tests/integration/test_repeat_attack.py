"""Integration test for the repeat-attack optimization (victim profiling)."""

from repro import units
from repro.core.attack.campaign import ColocationCampaign
from repro.core.attack.strategies import optimized_launch
from repro.core.attack.targeting import VictimProfile
from repro.core.fingerprint import fingerprint_gen1_instances


def small_strategy(prefix):
    return lambda c: optimized_launch(
        c,
        n_services=2,
        launches=4,
        instances_per_service=16,
        interval_s=10 * units.MINUTE,
        service_prefix=prefix,
    )


class TestRepeatAttack:
    def test_profile_focuses_second_strike(self, tiny_env):
        attacker = tiny_env.attacker
        victim = tiny_env.victim("account-2")

        # First strike with verification.
        campaign = ColocationCampaign(
            attacker=attacker, victim=victim, strategy=small_strategy("s1")
        )
        result = campaign.run(n_victim_instances=10, victim_service_name="api")
        assert result.coverage > 0.3, "first strike must achieve co-location"

        cluster_of = result.verification.cluster_index()
        victim_handles = [
            h
            for cluster in result.verification.clusters
            for h in cluster
            if h.instance_id.startswith("account-2/")
        ]
        attacker_alive = [
            h
            for cluster in result.verification.clusters
            for h in cluster
            if h.instance_id.startswith("account-1/") and h.alive
        ]
        tagged = fingerprint_gen1_instances(attacker_alive, p_boot=1.0)
        profile = VictimProfile.from_campaign(
            now=attacker.now(),
            victim_handles=victim_handles,
            cluster_of=cluster_of,
            attacker_fingerprints={h.instance_id: fp for h, fp in tagged},
        )
        assert profile.fingerprints

        # Time passes; all instances die.
        for name in attacker.service_names():
            attacker.disconnect(name)
        victim.disconnect("api")
        attacker.wait(1 * units.DAY)

        # Second strike: select only instances on profiled hosts.
        outcome = small_strategy("s2")(attacker)
        tagged2 = fingerprint_gen1_instances(outcome.handles, p_boot=1.0)
        targets = profile.select_targets(tagged2, now=attacker.now())
        assert targets, "some instances must land on profiled hosts again"
        assert len(targets) < len(outcome.handles), "profiling must narrow focus"

        # Precision: targets truly sit on hosts the victim prefers.
        victim_handles2 = victim.connect("api", 10)
        orch = tiny_env.orchestrator
        victim_hosts = {orch.true_host_of(h.instance_id) for h in victim_handles2}
        on_target = sum(
            1 for h in targets if orch.true_host_of(h.instance_id) in victim_hosts
        )
        assert on_target / len(targets) > 0.5
