"""Twin-world identity suite for the vectorized CTest round engine.

Every test builds two byte-identical simulated worlds from the same seed,
runs the scalar per-round loop in one and the batched ``observe_rounds``
engine in the other, and asserts that verdicts, per-instance hit counts,
sandbox RNG end states, and host pressurer sets all match exactly.  This
is the engine-level counterpart of the golden-trace byte-identity
guarantee: the fast path must be indistinguishable from the loop.
"""

from __future__ import annotations

import pytest

from repro.cloud.api import InstanceHandle
from repro.cloud.services import ServiceConfig
from repro.core.covert import MemoryBusCovertChannel, RngCovertChannel
from repro.core.verification import ScalableVerifier, TaggedInstance
from repro.errors import InstanceGoneError
from repro.faults import FaultPlan, FaultSpec
from repro.sandbox.base import ChannelPort


class ScriptedPlan(FaultPlan):
    """A fault plan that kills specific instances at specific rounds.

    ``deaths`` maps instance ids to the CTest round in which they die;
    the batch serial in the token is ignored so the schedule applies to
    whichever batch tests the instance.  No verdict noise.
    """

    def __init__(self, deaths: dict[str, int]) -> None:
        super().__init__(FaultSpec())
        self._deaths = dict(deaths)

    def ctest_death_round(self, token: str, total_rounds: int) -> int | None:
        _serial, _, instance_id = token.partition(":")
        when = self._deaths.get(instance_id)
        if when is None:
            return None
        return min(when, total_rounds - 1)

    def ctest_noise(self, token: str) -> bool:
        return False


def launch(env, n, name="svc", account="account-1"):
    client = env.clients[account]
    client.deploy(ServiceConfig(name=name))
    return client.connect(name, n)


def rng_state(handle: InstanceHandle) -> str:
    return handle.run(lambda sandbox: str(sandbox._rng.bit_generator.state))


def pressurer_sets(env, handles) -> dict[str, frozenset]:
    orch = env.orchestrator
    hosts = {orch.true_host_of(h.instance_id) for h in handles}
    return {
        host_id: env.datacenter.host(host_id).rng_resource.current_pressurers()
        for host_id in sorted(hosts)
    }


def forbid_loop_engine(channel: RngCovertChannel) -> None:
    """Make the channel fail loudly if the batched engine falls back."""

    def fail(*_args, **_kwargs):  # pragma: no cover - only on regression
        pytest.fail("vectorized channel fell back to the scalar loop engine")

    channel._observe_window_loop = fail


def run_twin_worlds(
    tiny_env_factory,
    seed: int,
    n_instances: int,
    group_size: int,
    threshold: int,
    plan_factory,
    channel_cls=RngCovertChannel,
    kill_first: bool = False,
    expect_batched: bool = True,
):
    """Run one identical ctest_batch in a loop world and a batched world.

    Returns ``(loop_world, batched_world)`` observation dicts so callers
    can make scenario-specific assertions on top of the identity checks
    performed here.
    """
    worlds = {}
    for label, vectorized in (("loop", False), ("batched", True)):
        env = tiny_env_factory(seed=seed)
        handles = launch(env, n_instances)
        if kill_first:
            handles[0]._instance.terminate(env.orchestrator.clock.now())
        groups = [
            handles[i : i + group_size]
            for i in range(0, len(handles), group_size)
        ]
        channel = channel_cls(fault_plan=plan_factory(), vectorized=vectorized)
        if vectorized and expect_batched:
            forbid_loop_engine(channel)
        results = channel.ctest_batch(groups, threshold)
        worlds[label] = {
            "ids": [h.instance_id for h in handles],
            "positives": [r.positive for r in results],
            "hits": dict(channel._last_hits),
            "states": {
                h.instance_id: rng_state(h) for h in handles if h.alive
            },
            "pressurers": pressurer_sets(env, handles),
            "faults": channel.stats.faults_injected,
        }
    loop, batched = worlds["loop"], worlds["batched"]
    assert loop["ids"] == batched["ids"], "twin worlds diverged before the test"
    assert loop["positives"] == batched["positives"]
    assert loop["hits"] == batched["hits"]
    assert loop["states"] == batched["states"]
    assert loop["pressurers"] == batched["pressurers"]
    assert loop["faults"] == batched["faults"]
    return loop, batched


# 8 seeds x 4 shapes = 32 identity cases; the nonzero death rates make
# fault-injected mid-test deaths part of the pinned surface.
SHAPES = [
    pytest.param(6, 2, 2, 0.0, id="pairs-clean"),
    pytest.param(9, 3, 2, 0.0, id="trios-clean"),
    pytest.param(10, 5, 3, 0.25, id="quints-m3-deaths"),
    pytest.param(8, 4, 2, 0.5, id="quads-heavy-deaths"),
]


@pytest.mark.parametrize("seed", range(1, 9))
@pytest.mark.parametrize("n,group_size,threshold,death_rate", SHAPES)
def test_identity_matrix(
    tiny_env_factory, seed, n, group_size, threshold, death_rate
):
    run_twin_worlds(
        tiny_env_factory,
        seed=seed,
        n_instances=n,
        group_size=group_size,
        threshold=threshold,
        plan_factory=lambda: FaultPlan(
            FaultSpec(ctest_death_rate=death_rate, seed=seed)
        ),
    )


class TestEdgeCases:
    def test_instance_dead_before_start(self, tiny_env_factory):
        loop, _batched = run_twin_worlds(
            tiny_env_factory,
            seed=3,
            n_instances=6,
            group_size=3,
            threshold=2,
            plan_factory=lambda: None,
            kill_first=True,
        )
        # The dead instance reads as negative on both paths.
        assert loop["positives"][0][0] is False

    def test_death_at_round_zero(self, tiny_env_factory):
        env = tiny_env_factory(seed=4)
        victim = launch(env, 4)[0].instance_id
        loop, _batched = run_twin_worlds(
            tiny_env_factory,
            seed=4,
            n_instances=4,
            group_size=4,
            threshold=2,
            plan_factory=lambda: ScriptedPlan({victim: 0}),
        )
        assert loop["hits"][victim] == 0
        assert loop["positives"][0][0] is False
        assert loop["faults"] == 1

    def test_death_at_last_round(self, tiny_env_factory):
        env = tiny_env_factory(seed=5)
        victim = launch(env, 4)[1].instance_id
        channel = RngCovertChannel()
        run_twin_worlds(
            tiny_env_factory,
            seed=5,
            n_instances=4,
            group_size=4,
            threshold=2,
            plan_factory=lambda: ScriptedPlan(
                {victim: channel.total_rounds - 1}
            ),
        )

    def test_multiple_deaths_same_round(self, tiny_env_factory):
        env = tiny_env_factory(seed=6)
        ids = [h.instance_id for h in launch(env, 6)]
        run_twin_worlds(
            tiny_env_factory,
            seed=6,
            n_instances=6,
            group_size=6,
            threshold=2,
            plan_factory=lambda: ScriptedPlan(
                {ids[0]: 10, ids[2]: 10, ids[4]: 30}
            ),
        )

    def test_stale_pressure_from_real_instance_gone(self, tiny_env_factory):
        """An instance terminated between pressure start and the window
        raises a real ``InstanceGoneError``; the loop never stops its
        pressure, and the batched engine must model that stale pressure
        as external contention."""
        worlds = {}
        for vectorized in (False, True):
            env = tiny_env_factory(seed=7)
            handles = launch(env, 6)
            channel = RngCovertChannel(vectorized=vectorized)
            for handle in handles:
                handle.run(channel._start)
            victim = handles[0]
            victim._instance.terminate(env.orchestrator.clock.now())
            dead: set[str] = set()
            engine = (
                channel._observe_window_batched
                if vectorized
                else channel._observe_window_loop
            )
            hits = engine(
                handles,
                dead,
                {},
                {h.instance_id: 2 for h in handles},
            )
            assert hits is not None
            worlds[vectorized] = {
                "hits": hits,
                "dead": set(dead),
                "states": {
                    h.instance_id: rng_state(h) for h in handles[1:]
                },
                "pressurers": pressurer_sets(env, handles),
            }
        assert worlds[False] == worlds[True]
        # The victim's stale pressure is still registered on its host.
        victim_id = next(iter(worlds[False]["dead"]))
        assert any(
            victim_id in members
            for members in worlds[False]["pressurers"].values()
        )

    def test_verifier_with_singleton_adjacent_chunks(self, tiny_env_factory):
        """A 7-member fingerprint group at m=2 chunks as 3+3+1, which
        ``_balanced_chunks`` rebalances to 3+2+2 — the singleton-adjacent
        shape.  The full verifier must report identical clusters and test
        counts under both engines."""
        reports = {}
        for vectorized in (False, True):
            env = tiny_env_factory(seed=8)
            handles = launch(env, 7)
            tagged = [
                TaggedInstance(handle=h, fingerprint="same-fp", model_key="cpu0")
                for h in handles
            ]
            channel = RngCovertChannel(vectorized=vectorized)
            if vectorized:
                forbid_loop_engine(channel)
            report = ScalableVerifier(channel, threshold_m=2).verify(tagged)
            reports[vectorized] = {
                "clusters": sorted(
                    sorted(h.instance_id for h in cluster)
                    for cluster in report.clusters
                ),
                "n_tests": report.n_tests,
                "n_batches": report.n_batches,
                "fallback_groups": report.fallback_groups,
                "states": {h.instance_id: rng_state(h) for h in handles},
            }
        assert reports[False] == reports[True]
        # The clusters match the simulator's ground truth placement.
        env = tiny_env_factory(seed=8)
        handles = launch(env, 7)
        truth: dict[str, set[str]] = {}
        for h in handles:
            truth.setdefault(
                env.orchestrator.true_host_of(h.instance_id), set()
            ).add(h.instance_id)
        assert sorted(sorted(m) for m in truth.values()) == reports[True]["clusters"]

    def test_memory_bus_channel_identity(self, tiny_env_factory):
        run_twin_worlds(
            tiny_env_factory,
            seed=9,
            n_instances=6,
            group_size=3,
            threshold=2,
            plan_factory=lambda: None,
            channel_cls=MemoryBusCovertChannel,
        )


class TestEngineGuards:
    def test_subclass_overriding_observe_loses_fast_path(self, tiny_env_factory):
        class CustomObserve(RngCovertChannel):
            @staticmethod
            def _observe(sandbox):
                return sandbox.observe_rng_contention()

        class CustomPort(RngCovertChannel):
            @staticmethod
            def _port(sandbox):
                return sandbox.rng_channel_port()

        assert not CustomObserve()._vector_capable()
        assert not CustomPort()._vector_capable()
        assert RngCovertChannel()._vector_capable()
        assert MemoryBusCovertChannel()._vector_capable()

    def test_incapable_channel_still_correct(self, tiny_env_factory):
        """A subclass that falls off the fast path silently runs the loop
        and produces the same verdicts."""

        class CustomObserve(RngCovertChannel):
            @staticmethod
            def _observe(sandbox):
                return sandbox.observe_rng_contention()

        loop, _ = run_twin_worlds(
            tiny_env_factory,
            seed=10,
            n_instances=4,
            group_size=2,
            threshold=2,
            plan_factory=lambda: None,
            channel_cls=CustomObserve,
            expect_batched=False,
        )
        assert len(loop["positives"]) == 2

    def test_customized_sandbox_yields_no_port(self, tiny_env):
        handle = launch(tiny_env, 1)[0]
        sandbox = handle._instance.sandbox

        class CustomSandbox(type(sandbox)):
            def observe_rng_contention(self):
                return 99

        custom = CustomSandbox(
            host=sandbox._host,
            clock=sandbox._clock,
            rng=sandbox._rng,
            sandbox_id="custom",
        )
        assert custom.rng_channel_port() is None
        assert custom.bus_channel_port() is not None

    def test_port_carries_host_resource_and_private_rng(self, tiny_env):
        handle = launch(tiny_env, 1)[0]
        sandbox = handle._instance.sandbox
        port = sandbox.rng_channel_port()
        assert isinstance(port, ChannelPort)
        assert port.resource is sandbox._host.rng_resource
        assert port.rng is sandbox._rng
        assert port.sandbox_id == handle.instance_id
        bus_port = sandbox.bus_channel_port()
        assert bus_port.resource is sandbox._host.memory_bus

    def test_channel_resource_unknown_kind_rejected(self, tiny_env):
        handle = launch(tiny_env, 1)[0]
        with pytest.raises(ValueError, match="unknown covert-channel"):
            handle._instance.sandbox._host.channel_resource("cache")


class TestRunBatch:
    def test_groups_match_ground_truth_placement(self, tiny_env):
        handles = launch(tiny_env, 12)
        orch = tiny_env.orchestrator
        groups = InstanceHandle.run_batch(
            handles, lambda sandboxes: [s.sandbox_id for s in sandboxes]
        )
        for members, ids in groups:
            assert [h.instance_id for h in members] == ids
            hosts = {orch.true_host_of(h.instance_id) for h in members}
            assert len(hosts) == 1
        flat = [h.instance_id for members, _ids in groups for h in members]
        assert sorted(flat) == sorted(h.instance_id for h in handles)

    def test_preserves_input_order_within_host(self, tiny_env):
        handles = launch(tiny_env, 12)
        order = {h.instance_id: i for i, h in enumerate(handles)}
        for members, _ in InstanceHandle.run_batch(
            handles, lambda sandboxes: None
        ):
            indices = [order[h.instance_id] for h in members]
            assert indices == sorted(indices)

    def test_dead_handle_rejected_before_any_probe(self, tiny_env):
        handles = launch(tiny_env, 4)
        handles[2]._instance.terminate(tiny_env.orchestrator.clock.now())
        probed: list[str] = []

        def probe(sandboxes):
            probed.extend(s.sandbox_id for s in sandboxes)

        with pytest.raises(InstanceGoneError):
            InstanceHandle.run_batch(handles, probe)
        assert probed == []

    def test_empty_input(self):
        assert InstanceHandle.run_batch([], lambda sandboxes: None) == []
