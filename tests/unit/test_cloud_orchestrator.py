"""Unit tests for the orchestrator (scaling, reaping, billing, placement)."""

import pytest

from repro import units
from repro.cloud.accounts import Account
from repro.cloud.instance import InstanceState
from repro.cloud.services import ServiceConfig
from repro.errors import CloudError, QuotaExceededError


def deploy(env, name="svc", account="account-1", **config):
    config.setdefault("max_instances", 100)
    return env.orchestrator.deploy_service(account, ServiceConfig(name=name, **config))


class TestControlPlane:
    def test_deploy_assigns_image(self, tiny_env):
        service = deploy(tiny_env)
        assert service.image_id.startswith("image-")

    def test_duplicate_service_rejected(self, tiny_env):
        deploy(tiny_env)
        with pytest.raises(CloudError):
            deploy(tiny_env)

    def test_same_name_different_accounts_ok(self, tiny_env):
        deploy(tiny_env, account="account-1")
        deploy(tiny_env, account="account-2")

    def test_rebuild_image_changes_id(self, tiny_env):
        service = deploy(tiny_env)
        old = service.image_id
        tiny_env.orchestrator.rebuild_image(service)
        assert service.image_id != old

    def test_unregistered_account_rejected(self, tiny_env):
        with pytest.raises(CloudError):
            deploy(tiny_env, account="nobody")

    def test_duplicate_account_registration_rejected(self, tiny_env):
        with pytest.raises(CloudError):
            tiny_env.orchestrator.register_account(Account("account-1"))


class TestScaling:
    def test_connect_creates_requested_instances(self, tiny_env):
        service = deploy(tiny_env)
        instances = tiny_env.orchestrator.connect(service, 12)
        assert len(instances) == 12
        assert all(i.state is InstanceState.ACTIVE for i in instances)

    def test_connect_beyond_service_limit_rejected(self, tiny_env):
        service = deploy(tiny_env, max_instances=10)
        with pytest.raises(CloudError):
            tiny_env.orchestrator.connect(service, 11)

    def test_connect_beyond_account_quota_rejected(self, tiny_env):
        account = tiny_env.orchestrator.accounts["account-1"]
        account.max_instances_per_service = 5
        service = deploy(tiny_env)
        with pytest.raises(QuotaExceededError):
            tiny_env.orchestrator.connect(service, 6)

    def test_connect_reuses_idle_instances(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        first = orch.connect(service, 8)
        orch.disconnect(service)
        # Reconnect before any reaping: same instances come back.
        second = orch.connect(service, 8)
        assert {i.instance_id for i in first} == {i.instance_id for i in second}

    def test_cold_start_advances_clock(self, tiny_env):
        service = deploy(tiny_env)
        t0 = tiny_env.clock.now()
        tiny_env.orchestrator.connect(service, 10)
        assert tiny_env.clock.now() > t0

    def test_instances_placed_on_account_base_hosts(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        instances = orch.connect(service, 10)
        base = set(tiny_env.datacenter.shard_hosts(0))  # account-1 -> shard 0
        assert {i.host_id for i in instances} <= base

    def test_different_accounts_different_base_hosts(self, tiny_env):
        orch = tiny_env.orchestrator
        s1 = deploy(tiny_env, name="a1", account="account-1")
        s2 = deploy(tiny_env, name="a2", account="account-2")
        h1 = {i.host_id for i in orch.connect(s1, 10)}
        h2 = {i.host_id for i in orch.connect(s2, 10)}
        assert h1.isdisjoint(h2)

    def test_kill_service_terminates_everything(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        orch.connect(service, 6)
        orch.kill_service(service)
        assert orch.alive_instances(service) == []


class TestIdleReaping:
    def test_idle_instances_survive_grace_period(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        orch.connect(service, 10)
        orch.disconnect(service)
        tiny_env.clock.sleep(tiny_env.datacenter.profile.idle_grace * 0.9)
        assert len(orch.alive_instances(service)) == 10

    def test_all_idle_gone_by_deadline(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        orch.connect(service, 10)
        orch.disconnect(service)
        tiny_env.clock.sleep(tiny_env.datacenter.profile.idle_deadline + 1.0)
        assert orch.alive_instances(service) == []

    def test_gradual_termination_between_grace_and_deadline(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env, max_instances=40)
        orch.connect(service, 40)
        orch.disconnect(service)
        profile = tiny_env.datacenter.profile
        midpoint = (profile.idle_grace + profile.idle_deadline) / 2
        tiny_env.clock.sleep(midpoint)
        remaining = len(orch.alive_instances(service))
        assert 0 < remaining < 40

    def test_reconnect_cancels_reaping(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        orch.connect(service, 6)
        orch.disconnect(service)
        orch.connect(service, 6)  # reconnect immediately
        tiny_env.clock.sleep(tiny_env.datacenter.profile.idle_deadline + 60.0)
        assert len(orch.alive_instances(service)) == 6

    def test_active_instances_never_reaped(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        orch.connect(service, 4)
        tiny_env.clock.sleep(10 * units.HOUR)
        assert len(orch.alive_instances(service)) == 4


class TestBillingIntegration:
    def test_active_time_is_billed_on_disconnect(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        orch.connect(service, 5)
        tiny_env.clock.sleep(100.0)
        orch.disconnect(service)
        assert orch.accounts["account-1"].billing.total_usd > 0

    def test_idle_time_not_billed(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        orch.connect(service, 5)
        orch.disconnect(service)
        billed_at_disconnect = orch.accounts["account-1"].billing.total_usd
        tiny_env.clock.sleep(300.0)
        assert orch.accounts["account-1"].billing.total_usd == billed_at_disconnect

    def test_accrued_cost_visible_while_active(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        orch.connect(service, 5)
        tiny_env.clock.sleep(100.0)
        assert orch.account_cost_usd("account-1") > 0

    def test_larger_containers_cost_more(self, tiny_env_factory):
        from repro.cloud.services import LARGE, SMALL

        def cost_for(size):
            env = tiny_env_factory()
            orch = env.orchestrator
            service = orch.deploy_service(
                "account-1", ServiceConfig(name="s", size=size, max_instances=100)
            )
            orch.connect(service, 5)
            env.clock.sleep(100.0)
            orch.disconnect(service)
            return orch.accounts["account-1"].billing.total_usd

        assert cost_for(LARGE) > 3 * cost_for(SMALL)


class TestGroundTruth:
    def test_true_host_of_matches_instance(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        instance = orch.connect(service, 1)[0]
        assert orch.true_host_of(instance.instance_id) == instance.host_id


class TestScaleTo:
    def test_partial_idle_reuse_leaves_extras_idle(self, tiny_env):
        """Scaling out by less than the idle pool must reactivate only the
        needed instances; extras stay idle (and free) awaiting the reaper."""
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        orch.connect(service, 10)
        orch.disconnect(service)
        active = orch.scale_to(service, 4)
        assert len(active) == 4
        states = [i.state.value for i in orch.alive_instances(service)]
        assert states.count("active") == 4
        assert states.count("idle") == 6

    def test_scale_beyond_idle_creates_new(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        orch.connect(service, 5)
        orch.disconnect(service)
        active = orch.scale_to(service, 8)
        assert len(active) == 8
        assert len(orch.alive_instances(service)) == 8

    def test_scale_to_zero_equals_disconnect(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        orch.connect(service, 6)
        assert orch.scale_to(service, 0) == []
        states = {i.state.value for i in orch.alive_instances(service)}
        assert states == {"idle"}

    def test_scale_up_then_down_then_up(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        orch.scale_to(service, 10)
        orch.scale_to(service, 3)
        active = orch.scale_to(service, 7)
        assert len(active) == 7
        # No new creations were needed: the seven come from the original 10.
        assert len(orch.alive_instances(service)) == 10


class TestColdStartLatency:
    def test_gen2_cold_start_slower_than_gen1(self, tiny_env_factory):
        """Paper §2.3: Gen 2's larger footprint means longer start-up."""

        def startup(generation):
            env = tiny_env_factory()
            service = env.orchestrator.deploy_service(
                "account-1",
                ServiceConfig(name="boot", generation=generation, max_instances=100),
            )
            t0 = env.clock.now()
            env.orchestrator.connect(service, 20)
            return env.clock.now() - t0

        assert startup("gen2") > 1.5 * startup("gen1")
