"""Unit tests for orchestrator behaviors beyond the basics: dynamic
placement scatter, helper recruitment integration, startup slowdown, and
per-service bookkeeping."""

import pytest

from repro import units
from repro.cloud.services import ServiceConfig
from repro.experiments.base import default_env

from tests.conftest import tiny_profile


def deploy_and_connect(env, n, name="svc", account="account-1"):
    client = env.clients[account]
    service_name = client.deploy(ServiceConfig(name=name, max_instances=max(100, n)))
    handles = client.connect(service_name, n)
    return client, service_name, handles


class TestDynamicScatter:
    def make_env(self, dynamism):
        profile = tiny_profile(
            dynamic_placement=True,
            default_dynamism=dynamism,
            plan=tiny_profile().plan,
        )
        return default_env(profile=profile, seed=9)

    def test_zero_dynamism_stays_on_base(self):
        env = default_env(profile=tiny_profile(), seed=9)
        _c, _s, handles = deploy_and_connect(env, 40, account="account-2")
        base = set(env.datacenter.shard_hosts(1))
        hosts = {env.orchestrator.true_host_of(h.instance_id) for h in handles}
        assert hosts <= base

    def test_dynamism_scatters_a_fraction(self):
        profile = tiny_profile(dynamic_placement=True, default_dynamism=0.5)
        env = default_env(profile=profile, seed=9)
        # Unpinned account -> default dynamism applies.
        from repro.cloud.accounts import Account
        from repro.cloud.api import FaaSClient

        env.orchestrator.register_account(Account("stranger"))
        client = FaaSClient(env.orchestrator, "stranger")
        name = client.deploy(ServiceConfig(name="dyn", max_instances=100))
        handles = client.connect(name, 60)
        shard = env.datacenter.shard_for_account("stranger")
        base = set(env.datacenter.shard_hosts(shard))
        hosts = [env.orchestrator.true_host_of(h.instance_id) for h in handles]
        scattered = sum(1 for h in hosts if h not in base)
        assert 10 < scattered < 50  # ~50% of 60

    def test_pinned_dynamism_overrides_default(self):
        profile = tiny_profile(
            dynamic_placement=True,
            default_dynamism=0.9,
            plan=type(tiny_profile().plan)(
                account_shards={"account-1": 0},
                account_dynamism={"account-1": 0.0},
            ),
        )
        env = default_env(profile=profile, seed=9)
        _c, _s, handles = deploy_and_connect(env, 30)
        base = set(env.datacenter.shard_hosts(0))
        hosts = {env.orchestrator.true_host_of(h.instance_id) for h in handles}
        assert hosts <= base


class TestStartupLatency:
    def test_more_instances_take_longer(self, tiny_env_factory):
        def startup_time(n):
            env = tiny_env_factory()
            client = env.clients["account-1"]
            name = client.deploy(ServiceConfig(name="s", max_instances=1000))
            t0 = client.now()
            client.connect(name, n)
            return client.now() - t0

        assert startup_time(50) < startup_time(150)

    def test_slowdown_near_instance_cap(self, tiny_env_factory):
        """Paper §4.4.1: instance creation slows as the count nears 1000."""

        def per_instance_time(n):
            env = tiny_env_factory()
            # Give hosts enough capacity for large fleets.
            for host in env.datacenter.hosts:
                host.capacity_slots = 10_000.0
            client = env.clients["account-1"]
            name = client.deploy(ServiceConfig(name="s", max_instances=1000))
            t0 = client.now()
            client.connect(name, n)
            return (client.now() - t0) / n

        assert per_instance_time(900) > per_instance_time(300)


class TestServiceBookkeeping:
    def test_host_counts_decrease_on_termination(self, tiny_env):
        client, name, handles = deploy_and_connect(tiny_env, 20)
        orch = tiny_env.orchestrator
        service = client._service(name)
        counts = orch._service_host_counts[service.qualified_name]
        assert sum(counts.values()) == 20
        client.kill(name)
        assert sum(counts.values()) == 0

    def test_load_slots_released_on_termination(self, tiny_env):
        client, name, handles = deploy_and_connect(tiny_env, 20)
        orch = tiny_env.orchestrator
        host_id = orch.true_host_of(handles[0].instance_id)
        assert orch.host_load_slots(host_id) > 0
        client.kill(name)
        assert orch.host_load_slots(host_id) == 0.0

    def test_relaunch_balances_counting_survivors(self, tiny_env):
        """After partial reaping, a relaunch tops existing hosts up evenly
        instead of stacking everything on the survivors' hosts."""
        client, name, first = deploy_and_connect(tiny_env, 20)
        client.disconnect(name)
        profile = tiny_env.datacenter.profile
        midpoint = (profile.idle_grace + profile.idle_deadline) / 2
        client.wait(midpoint)
        survivors = [h for h in first if h.alive]
        assert 0 < len(survivors) < 20
        second = client.connect(name, 20)
        orch = tiny_env.orchestrator
        from collections import Counter

        counts = Counter(orch.true_host_of(h.instance_id) for h in second)
        assert max(counts.values()) - min(counts.values()) <= 2
