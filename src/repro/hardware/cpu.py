"""CPU model catalog.

Cloud Run conceals detailed CPU information, but ``cpuid`` still exposes a
generic model string such as ``"Intel Xeon CPU @ 2.00GHz"`` whose labeled
base frequency doubles as the *reported* TSC frequency (paper §4.2, method 1).
This module defines the model descriptor and a catalog mirroring the handful
of generic models one observes on Cloud Run hosts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro import units

_FREQ_IN_NAME = re.compile(r"@\s*([0-9]+(?:\.[0-9]+)?)\s*GHz", re.IGNORECASE)


@dataclass(frozen=True)
class CPUModel:
    """An x86 CPU model as visible through ``cpuid``.

    Attributes
    ----------
    name:
        The model string, e.g. ``"Intel Xeon CPU @ 2.00GHz"``.
    base_frequency_hz:
        The labeled base frequency.  Empirically this equals the nominal TSC
        frequency the clock is supposed to run at, so fingerprinting code
        uses it as the reported TSC frequency.
    vendor:
        CPU vendor string (``"GenuineIntel"`` or ``"AuthenticAMD"``).
    llc_size_bytes:
        Last-level cache size, exposed because cache-based extraction attacks
        need it; unused by the co-location pipeline itself.
    """

    name: str
    base_frequency_hz: float
    vendor: str = "GenuineIntel"
    llc_size_bytes: int = 32 * 1024 * 1024

    @property
    def reported_tsc_frequency_hz(self) -> float:
        """The TSC frequency an attacker infers from the model name."""
        return self.base_frequency_hz

    @staticmethod
    def parse_frequency_from_name(name: str) -> float | None:
        """Extract the labeled frequency (Hz) from a model string.

        Returns ``None`` when the name carries no ``@ X.XXGHz`` suffix, which
        is how an attacker discovers that the reported-frequency method is
        unavailable for a given host.

        >>> CPUModel.parse_frequency_from_name("Intel Xeon CPU @ 2.20GHz")
        2200000000.0
        """
        match = _FREQ_IN_NAME.search(name)
        if match is None:
            return None
        return float(match.group(1)) * units.GHZ


#: Generic CPU models observed on Cloud Run hosts, with a rough frequency
#: mix.  Weights control how common each model is when building a simulated
#: fleet.  The diversity of nominal frequencies matters: it is what spreads
#: the Gen 2 refined-frequency fingerprint across enough 1 kHz buckets that
#: only ~2 hosts collide per value (paper §4.5) even though each host's own
#: frequency error is small (a fingerprint drifts only ~1 s of boot time
#: per day, Fig. 5).
DEFAULT_CPU_CATALOG: tuple[tuple[CPUModel, float], ...] = (
    (CPUModel("Intel Xeon CPU @ 2.00GHz", 2.00 * units.GHZ), 0.16),
    (CPUModel("Intel Xeon CPU @ 2.20GHz", 2.20 * units.GHZ), 0.14),
    (CPUModel("Intel Xeon CPU @ 2.25GHz", 2.25 * units.GHZ), 0.10),
    (CPUModel("Intel Xeon CPU @ 2.30GHz", 2.30 * units.GHZ), 0.10),
    (CPUModel("Intel Xeon CPU @ 2.50GHz", 2.50 * units.GHZ), 0.08),
    (CPUModel("Intel Xeon CPU @ 2.60GHz", 2.60 * units.GHZ), 0.08),
    (CPUModel("Intel Xeon CPU @ 2.70GHz", 2.70 * units.GHZ), 0.07),
    (CPUModel("Intel Xeon CPU @ 2.80GHz", 2.80 * units.GHZ), 0.07),
    (CPUModel("Intel Xeon CPU @ 3.10GHz", 3.10 * units.GHZ), 0.05),
    (
        CPUModel("AMD EPYC 7B12 @ 2.25GHz", 2.25 * units.GHZ, vendor="AuthenticAMD"),
        0.06,
    ),
    (
        CPUModel("AMD EPYC 7B13 @ 2.45GHz", 2.45 * units.GHZ, vendor="AuthenticAMD"),
        0.05,
    ),
    (
        CPUModel("AMD EPYC 9B14 @ 2.60GHz", 2.60 * units.GHZ, vendor="AuthenticAMD"),
        0.04,
    ),
)


def cpu_catalog() -> list[CPUModel]:
    """Return the catalog models without their fleet weights."""
    return [model for model, _weight in DEFAULT_CPU_CATALOG]
