"""Columnar per-service instance-state counts.

The orchestrator historically answered "how many active instances does
this service have?" by rebuilding Python lists from its per-service
instance dict — fine for one attacker service, quadratic pain when a
background-traffic engine (:mod:`repro.cloud.traffic`) evaluates
thousands of tenant services per autoscale tick.  This store keeps the
ACTIVE/IDLE counts as dense NumPy columns indexed by a stable
service-key <-> index mapping, mirroring :class:`~repro.fleet.store.FleetStore`
for hosts.

The :class:`~repro.cloud.orchestrator.Orchestrator` is the sole mutator
(every instance state transition — create, idle-out, reactivate,
terminate — routes through it); everyone else reads.  Counts are pure
bookkeeping: they never feed an RNG draw, so they cannot perturb the
byte-identity contract.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

IntColumn = NDArray[np.int64]
IndexArray = NDArray[np.int64]

#: Initial/incremental column capacity; doubled on growth.
_MIN_CAPACITY = 64


class ServiceStateStore:
    """Dense per-service ACTIVE/IDLE instance counts as NumPy columns."""

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self._keys: list[str] = []
        self._active: IntColumn = np.zeros(_MIN_CAPACITY, dtype=np.int64)
        self._idle: IntColumn = np.zeros(_MIN_CAPACITY, dtype=np.int64)

    # ------------------------------------------------------------------
    # Index mapping
    # ------------------------------------------------------------------
    @property
    def n_services(self) -> int:
        """Number of registered services."""
        return len(self._keys)

    def ensure(self, service_key: str) -> int:
        """Return the dense index for a service key, registering it new."""
        index = self._index.get(service_key)
        if index is None:
            index = len(self._keys)
            self._index[service_key] = index
            self._keys.append(service_key)
            if index >= self._active.shape[0]:
                grow = max(_MIN_CAPACITY, self._active.shape[0])
                self._active = np.concatenate(
                    [self._active, np.zeros(grow, dtype=np.int64)]
                )
                self._idle = np.concatenate(
                    [self._idle, np.zeros(grow, dtype=np.int64)]
                )
        return index

    def index_of(self, service_key: str) -> int:
        """Dense index of a registered service key.

        Raises
        ------
        KeyError
            If the service was never registered.
        """
        return self._index[service_key]

    def key_of(self, index: int) -> str:
        """Service key at a dense index."""
        return self._keys[index]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def active_count(self, index: int) -> int:
        """ACTIVE instances of the service at ``index``."""
        return int(self._active[index])

    def idle_count(self, index: int) -> int:
        """IDLE (alive, disconnected) instances of the service."""
        return int(self._idle[index])

    def alive_count(self, index: int) -> int:
        """All non-terminated instances of the service."""
        return int(self._active[index] + self._idle[index])

    def active_for(self, indices: IndexArray) -> IntColumn:
        """Batched ACTIVE counts for an index array (one fancy-index op)."""
        result: IntColumn = self._active[indices]
        return result

    def totals(self) -> tuple[int, int]:
        """``(active, idle)`` instance totals across every service."""
        n = len(self._keys)
        return int(self._active[:n].sum()), int(self._idle[:n].sum())

    # ------------------------------------------------------------------
    # Transitions (orchestrator only)
    # ------------------------------------------------------------------
    def on_created(self, index: int, count: int = 1) -> None:
        """``count`` new instances launched straight into ACTIVE."""
        self._active[index] += count

    def on_idled(self, index: int) -> None:
        """One ACTIVE instance went IDLE."""
        self._active[index] -= 1
        self._idle[index] += 1

    def on_activated(self, index: int) -> None:
        """One IDLE instance was reused back into ACTIVE."""
        self._idle[index] -= 1
        self._active[index] += 1

    def on_terminated(self, index: int, was_active: bool) -> None:
        """One instance left ACTIVE (or IDLE) for TERMINATED."""
        if was_active:
            self._active[index] -= 1
        else:
            self._idle[index] -= 1
