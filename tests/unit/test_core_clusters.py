"""Unit tests for the disjoint-set helper."""

from repro.core.clusters import DisjointSet


class TestDisjointSet:
    def test_items_start_as_singletons(self):
        ds = DisjointSet(["a", "b"])
        assert not ds.same("a", "b")
        assert len(ds.clusters()) == 2

    def test_union_merges(self):
        ds = DisjointSet(["a", "b", "c"])
        ds.union("a", "b")
        assert ds.same("a", "b")
        assert not ds.same("a", "c")

    def test_transitivity(self):
        ds = DisjointSet(["a", "b", "c"])
        ds.union("a", "b")
        ds.union("b", "c")
        assert ds.same("a", "c")

    def test_union_adds_unknown_items(self):
        ds = DisjointSet()
        ds.union("x", "y")
        assert ds.same("x", "y")

    def test_add_is_idempotent(self):
        ds = DisjointSet()
        ds.add("a")
        ds.add("a")
        assert len(ds) == 1

    def test_clusters_cover_all_items(self):
        ds = DisjointSet(range(10))
        ds.union(0, 1)
        ds.union(2, 3)
        clusters = ds.clusters()
        assert sorted(i for c in clusters for i in c) == list(range(10))

    def test_cluster_shapes(self):
        ds = DisjointSet(range(6))
        ds.union(0, 1)
        ds.union(1, 2)
        ds.union(3, 4)
        sizes = sorted(len(c) for c in ds.clusters())
        assert sizes == [1, 3, 2] or sorted(sizes) == [1, 2, 3]

    def test_contains(self):
        ds = DisjointSet(["a"])
        assert "a" in ds
        assert "b" not in ds

    def test_self_union_is_noop(self):
        ds = DisjointSet(["a"])
        ds.union("a", "a")
        assert len(ds.clusters()) == 1
