"""Unit tests for the scalable co-location verifier."""

from dataclasses import dataclass

import pytest

from repro.analysis.metrics import pair_confusion
from repro.cloud.services import ServiceConfig
from repro.core.covert import CovertChannel, CTestResult, RngCovertChannel
from repro.core.fingerprint import (
    Gen1Fingerprint,
    fingerprint_gen1_instances,
    fingerprint_gen2_instances,
)
from repro.core.verification import (
    ScalableVerifier,
    TaggedInstance,
    _balanced_chunks,
    _GroupTask,
    tag_instances,
)
from repro.errors import VerificationError
from repro.faults import DEFAULT_CTEST_RETRY, RetryPolicy


def launch_and_tag(env, n, generation="gen1", name="svc"):
    client = env.attacker
    service = client.deploy(ServiceConfig(name=name, generation=generation))
    handles = client.connect(service, n)
    if generation == "gen2":
        pairs = fingerprint_gen2_instances(handles)
        tagged = [TaggedInstance(h, fp) for h, fp in pairs]
    else:
        pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
        tagged = [TaggedInstance(h, fp, fp.cpu_model) for h, fp in pairs]
    truth = {h.instance_id: env.orchestrator.true_host_of(h.instance_id) for h in handles}
    return tagged, truth


class TestScalableVerifier:
    def test_recovers_true_clusters(self, tiny_env):
        tagged, truth = launch_and_tag(tiny_env, 40)
        report = ScalableVerifier(RngCovertChannel()).verify(tagged)
        confusion = pair_confusion(report.cluster_index(), truth)
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0

    def test_cluster_count_matches_hosts(self, tiny_env):
        tagged, truth = launch_and_tag(tiny_env, 40)
        report = ScalableVerifier(RngCovertChannel()).verify(tagged)
        assert report.n_hosts == len(set(truth.values()))

    def test_covers_every_instance(self, tiny_env):
        tagged, _truth = launch_and_tag(tiny_env, 25)
        report = ScalableVerifier(RngCovertChannel()).verify(tagged)
        covered = {h.instance_id for c in report.clusters for h in c}
        assert covered == {t.handle.instance_id for t in tagged}

    def test_far_fewer_tests_than_pairwise(self, tiny_env):
        tagged, truth = launch_and_tag(tiny_env, 40)
        report = ScalableVerifier(RngCovertChannel()).verify(tagged)
        pairwise_tests = 40 * 39 // 2
        assert report.n_tests < pairwise_tests / 4

    def test_batching_reduces_wall_time(self, tiny_env):
        tagged, _truth = launch_and_tag(tiny_env, 40)
        channel = RngCovertChannel()
        report = ScalableVerifier(channel).verify(tagged)
        assert report.n_batches < report.n_tests
        assert report.busy_seconds == pytest.approx(
            report.n_batches * channel.seconds_per_test
        )

    def test_handles_false_negative_fingerprints(self, tiny_env):
        """Split one fingerprint group artificially (as drift would) and
        check step 3 re-merges the clusters."""
        tagged, truth = launch_and_tag(tiny_env, 30)
        groups: dict = {}
        for t in tagged:
            groups.setdefault(t.fingerprint, []).append(t)
        big_fp, members = max(groups.items(), key=lambda kv: len(kv[1]))
        assert len(members) >= 2
        fake = Gen1Fingerprint(
            cpu_model=big_fp.cpu_model,
            boot_bucket=big_fp.boot_bucket + 1,
            p_boot=big_fp.p_boot,
        )
        split = [
            TaggedInstance(members[0].handle, fake, members[0].model_key)
        ] + [t for t in tagged if t.handle is not members[0].handle]
        report = ScalableVerifier(RngCovertChannel()).verify(split)
        confusion = pair_confusion(report.cluster_index(), truth)
        assert confusion.recall == 1.0
        assert report.merged_false_negatives >= 1

    def test_handles_false_positive_fingerprints(self, tiny_env):
        """Merge two different hosts' groups under one fingerprint and
        check step 2 splits them back apart."""
        tagged, truth = launch_and_tag(tiny_env, 30)
        fingerprints = list({t.fingerprint for t in tagged})
        assert len(fingerprints) >= 2
        keep, merge_away = fingerprints[0], fingerprints[1]
        forged = [
            TaggedInstance(
                t.handle,
                keep if t.fingerprint == merge_away else t.fingerprint,
                t.model_key,
            )
            for t in tagged
        ]
        report = ScalableVerifier(RngCovertChannel()).verify(forged)
        confusion = pair_confusion(report.cluster_index(), truth)
        assert confusion.precision == 1.0

    def test_gen2_mode_skips_false_negative_hunt(self, tiny_env):
        tagged, truth = launch_and_tag(tiny_env, 30, generation="gen2")
        channel = RngCovertChannel()
        report = ScalableVerifier(channel, assume_no_false_negatives=True).verify(tagged)
        confusion = pair_confusion(report.cluster_index(), truth)
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0

    def test_gen2_mode_batches_aggressively(self, tiny_env):
        tagged, _ = launch_and_tag(tiny_env, 30, generation="gen2")
        report = ScalableVerifier(
            RngCovertChannel(), assume_no_false_negatives=True
        ).verify(tagged)
        assert report.n_batches <= max(4, report.n_tests // 2)

    def test_collision_heavy_fallback_stays_cheap(self, tiny_env):
        """With every instance forged onto ONE fingerprint (maximum
        collisions), the fallback must resolve clusters in far fewer than
        pairwise tests, thanks to unit merging and negative-pair memory."""
        tagged, truth = launch_and_tag(tiny_env, 40)
        one_fp = tagged[0].fingerprint
        forged = [TaggedInstance(t.handle, one_fp, t.model_key) for t in tagged]
        report = ScalableVerifier(RngCovertChannel()).verify(forged)
        confusion = pair_confusion(report.cluster_index(), truth)
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0
        n_hosts = len(set(truth.values()))
        # Bound: chunk tests + ~units*hosts interactions, well under C(40,2).
        assert report.n_tests < 40 * 39 // 4

    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_exact_clusters_for_all_thresholds(self, tiny_env_factory, m):
        """Raising m shrinks the test count but must never cost accuracy:
        sub-threshold tests (pairs, small chunks) drop to their own size."""
        env = tiny_env_factory(seed=31)
        client = env.attacker
        from repro.cloud.services import ServiceConfig

        service = client.deploy(ServiceConfig(name="m-sweep"))
        handles = client.connect(service, 40)
        pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
        tagged = [TaggedInstance(h, fp, fp.cpu_model) for h, fp in pairs]
        report = ScalableVerifier(RngCovertChannel(), threshold_m=m).verify(tagged)
        truth = {
            h.instance_id: env.orchestrator.true_host_of(h.instance_id)
            for h in handles
        }
        confusion = pair_confusion(report.cluster_index(), truth)
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0

    def test_threshold_m_validated(self):
        with pytest.raises(VerificationError):
            ScalableVerifier(RngCovertChannel(), threshold_m=1)

    def test_single_instance_input(self, tiny_env):
        tagged, _ = launch_and_tag(tiny_env, 1)
        report = ScalableVerifier(RngCovertChannel()).verify(tagged)
        assert report.n_hosts == 1

    def test_empty_input(self):
        report = ScalableVerifier(RngCovertChannel()).verify([])
        assert report.clusters == []
        assert report.n_tests == 0


class TestBalancedChunks:
    def test_exact_multiples(self):
        assert _balanced_chunks(list(range(9)), 3) == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]

    def test_no_trailing_singleton(self):
        chunks = _balanced_chunks(list(range(10)), 3)
        assert [len(c) for c in chunks] == [3, 3, 2, 2]

    def test_small_inputs(self):
        assert _balanced_chunks([1], 3) == [[1]]
        assert _balanced_chunks([1, 2], 3) == [[1, 2]]

    def test_size_validation(self):
        with pytest.raises(VerificationError):
            _balanced_chunks([1, 2], 1)

    def test_chunks_cover_all(self):
        items = list(range(23))
        chunks = _balanced_chunks(items, 3)
        assert sorted(i for c in chunks for i in c) == items


@dataclass(frozen=True)
class FakeHandle:
    """Minimal stand-in for an InstanceHandle."""

    instance_id: str


class TestGroupByFingerprint:
    def test_uniform_keys_preserved(self):
        tagged = [
            TaggedInstance(FakeHandle("a"), "fp1", "xeon"),
            TaggedInstance(FakeHandle("b"), "fp1", "xeon"),
            TaggedInstance(FakeHandle("c"), "fp2", "epyc"),
        ]
        groups = dict(
            (key, [h.instance_id for h in members])
            for key, members in ScalableVerifier._group_by_fingerprint(tagged)
        )
        assert groups == {"xeon": ["a", "b"], "epyc": ["c"]}

    def test_mixed_keys_demote_group_to_none(self):
        """One fingerprint group with two different model keys cannot carry
        a host-disjointness guarantee against anyone — the group's batching
        key must become None, not the first member's key."""
        tagged = [
            TaggedInstance(FakeHandle("a"), "fp1", "xeon"),
            TaggedInstance(FakeHandle("b"), "fp1", "epyc"),
        ]
        groups = ScalableVerifier._group_by_fingerprint(tagged)
        assert len(groups) == 1
        key, members = groups[0]
        assert key is None
        assert [h.instance_id for h in members] == ["a", "b"]

    def test_key_vs_none_also_demotes(self):
        tagged = [
            TaggedInstance(FakeHandle("a"), "fp1", "xeon"),
            TaggedInstance(FakeHandle("b"), "fp1", None),
        ]
        (key, _members), = ScalableVerifier._group_by_fingerprint(tagged)
        assert key is None

    def test_membership_unaffected_by_demotion(self):
        tagged = [
            TaggedInstance(FakeHandle("a"), "fp1", "xeon"),
            TaggedInstance(FakeHandle("b"), "fp2", "xeon"),
            TaggedInstance(FakeHandle("c"), "fp1", "epyc"),
        ]
        groups = ScalableVerifier._group_by_fingerprint(tagged)
        members = {
            frozenset(h.instance_id for h in handles) for _key, handles in groups
        }
        assert members == {frozenset({"a", "c"}), frozenset({"b"})}


class TestPlanBatches:
    """The satellite-1 regression: ``model_key=None`` groups carry no
    host-disjointness guarantee, so their tests must run alone — no keyed
    group may share their batch (previously ``key not in set()`` let any
    keyed group slip in)."""

    @staticmethod
    def _request(model_key, *ids):
        handles = [FakeHandle(i) for i in ids]
        return (_GroupTask(handles, model_key), handles)

    @staticmethod
    def _plan(requests, **kwargs):
        verifier = ScalableVerifier(RngCovertChannel(), **kwargs)
        return ScalableVerifier._plan_batches(verifier, requests)

    def test_none_key_batch_is_exclusive(self):
        requests = [
            self._request(None, "a1", "a2"),
            self._request("xeon", "b1", "b2"),
            self._request("epyc", "c1", "c2"),
        ]
        batches = self._plan(requests)
        for batch in batches:
            if any(task.model_key is None for task, _test in batch):
                assert len(batch) == 1
        # The two keyed groups still share one batch with each other.
        assert len(batches) == 2

    def test_keyed_group_does_not_join_earlier_none_batch(self):
        # None first is the order that triggered the historical bug.
        requests = [self._request(None, "a1", "a2"), self._request("xeon", "b1", "b2")]
        batches = self._plan(requests)
        assert [len(b) for b in batches] == [1, 1]

    def test_every_none_group_runs_alone(self):
        requests = [self._request(None, f"g{k}a", f"g{k}b") for k in range(3)]
        batches = self._plan(requests)
        assert [len(b) for b in batches] == [1, 1, 1]

    def test_same_key_groups_split_across_batches(self):
        requests = [
            self._request("xeon", "a1", "a2"),
            self._request("xeon", "b1", "b2"),
        ]
        batches = self._plan(requests)
        assert [len(b) for b in batches] == [1, 1]

    def test_distinct_keys_share_a_batch(self):
        requests = [
            self._request("xeon", "a1", "a2"),
            self._request("epyc", "b1", "b2"),
        ]
        batches = self._plan(requests)
        assert [len(b) for b in batches] == [2]

    def test_gen2_mode_batches_everything(self):
        requests = [
            self._request(None, "a1", "a2"),
            self._request("xeon", "b1", "b2"),
        ]
        batches = self._plan(requests, assume_no_false_negatives=True)
        assert [len(b) for b in batches] == [2]

    def test_all_requests_planned_exactly_once(self):
        requests = [
            self._request("xeon", "a1"),
            self._request(None, "b1"),
            self._request("epyc", "c1"),
            self._request("xeon", "d1"),
        ]
        batches = self._plan(requests)
        planned = [task for batch in batches for task, _test in batch]
        assert sorted(id(t) for t in planned) == sorted(
            id(t) for t, _test in requests
        )


class ScriptedChannel(CovertChannel):
    """Replays scripted verdicts: ``scripts[call][group]`` is the positive
    tuple for that group in that call (the last call's script repeats)."""

    def __init__(self, scripts):
        super().__init__()
        self.scripts = [list(call) for call in scripts]
        self.calls = 0

    def ctest_batch(self, groups, threshold_m):
        script = self.scripts[min(self.calls, len(self.scripts) - 1)]
        self.calls += 1
        self.stats.record_batch([len(g) for g in groups], 1.0)
        return [
            CTestResult(
                handles=tuple(group), positive=tuple(script[i][: len(group)])
            )
            for i, group in enumerate(groups)
        ]


class TestCTestRetryPolicy:
    def _chunk(self):
        return [FakeHandle("a"), FakeHandle("b")]

    def test_default_policy_is_single_rerun(self):
        verifier = ScalableVerifier(ScriptedChannel([[[True, True]]]))
        assert verifier.retry_policy == DEFAULT_CTEST_RETRY

    def test_inconsistent_result_retried_and_counted(self):
        # 1 positive of a pair at threshold 2 is physically impossible
        # without noise; one re-run resolves it.
        channel = ScriptedChannel([[[True, False]], [[True, True]]])
        verifier = ScalableVerifier(channel)
        (result,) = verifier._run_batch([self._chunk()])
        assert result.positive == (True, True)
        assert channel.calls == 2
        assert channel.stats.retries == 1

    def test_retry_budget_exhausted_keeps_last_result(self):
        channel = ScriptedChannel([[[True, False]]])
        verifier = ScalableVerifier(channel)  # default: one re-run
        (result,) = verifier._run_batch([self._chunk()])
        assert result.positive == (True, False)
        assert channel.calls == 2
        assert channel.stats.retries == 1

    def test_larger_budget_outlasts_longer_noise(self):
        channel = ScriptedChannel(
            [[[True, False]], [[False, True]], [[True, False]], [[False, False]]]
        )
        verifier = ScalableVerifier(channel, retry_policy=RetryPolicy(max_retries=3))
        (result,) = verifier._run_batch([self._chunk()])
        assert result.positive == (False, False)
        assert channel.calls == 4
        assert channel.stats.retries == 3

    def test_consistent_results_never_retried(self):
        channel = ScriptedChannel([[[True, True]]])
        verifier = ScalableVerifier(channel, retry_policy=RetryPolicy(max_retries=5))
        verifier._run_batch([self._chunk()])
        assert channel.calls == 1
        assert channel.stats.retries == 0

    def test_only_inconsistent_slots_rerun(self):
        # Two chunks in one batch: the first is consistent, the second is
        # not — only the second is re-run (once inconsistently, then fine).
        channel = ScriptedChannel(
            [
                [[True, True], [True, False]],
                [[False, True]],
                [[True, True]],
            ]
        )
        verifier = ScalableVerifier(channel, retry_policy=RetryPolicy(max_retries=3))
        chunks = [self._chunk(), [FakeHandle("c"), FakeHandle("d")]]
        first, second = verifier._run_batch(chunks)
        assert first.positive == (True, True)
        assert second.positive == (True, True)
        assert channel.calls == 3
        assert channel.stats.retries == 2


class TestTagInstances:
    def test_derives_model_keys(self, tiny_env):
        client = tiny_env.attacker
        service = client.deploy(ServiceConfig(name="svc"))
        handles = client.connect(service, 5)
        pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
        tagged = tag_instances(pairs, model_key_fn=lambda fp: fp.cpu_model)
        assert all(t.model_key == t.fingerprint.cpu_model for t in tagged)


class TestReentrantStats:
    """Regression: per-call report totals on a shared channel.

    ``VerificationReport`` costs used to be computed by subtracting a
    baseline captured at ``verify()`` entry from raw stats fields — a
    scheme that silently double-counts if the fields are ever reset or the
    channel is reused concurrently.  The snapshot/delta discipline on
    :class:`~repro.telemetry.MetricSet` makes sequential reuse exact:
    each report carries only its own call's tests while the channel's
    stats keep the cumulative totals.
    """

    def test_two_sequential_verifies_report_per_call_and_cumulative(
        self, tiny_env_factory
    ):
        channel = RngCovertChannel()
        verifier = ScalableVerifier(channel)

        env_a = tiny_env_factory(seed=7)
        tagged_a, _ = launch_and_tag(env_a, 30)
        report_a = verifier.verify(tagged_a)

        after_first = channel.stats.n_tests
        assert after_first == report_a.n_tests > 0
        assert channel.stats.busy_seconds == pytest.approx(report_a.busy_seconds)

        env_b = tiny_env_factory(seed=8)
        tagged_b, _ = launch_and_tag(env_b, 24)
        report_b = verifier.verify(tagged_b)

        assert report_b.n_tests > 0
        # Per-call: the second report covers only the second call.
        assert report_b.n_tests == channel.stats.n_tests - after_first
        # Cumulative: the shared channel keeps the grand totals.
        assert channel.stats.n_tests == report_a.n_tests + report_b.n_tests
        assert channel.stats.busy_seconds == pytest.approx(
            report_a.busy_seconds + report_b.busy_seconds
        )
        assert channel.stats.batches == report_a.n_batches + report_b.n_batches

    def test_snapshot_since_isolates_a_window(self, tiny_env):
        channel = RngCovertChannel()
        tagged, _ = launch_and_tag(tiny_env, 20)
        ScalableVerifier(channel).verify(tagged)
        before = channel.stats.snapshot()
        assert channel.stats.since(before) == {}
        ScalableVerifier(channel).verify(tagged)
        delta = channel.stats.since(before)
        assert delta.get("tests", 0) > 0
        assert delta["tests"] <= channel.stats.n_tests


class TestFallbackQueueScaling:
    """Regression for the work-queue data structure: the pairwise fallback
    of a large group pops O(units^2) entries from the front of its pair
    queue; with ``list.pop(0)`` that drain was quadratic *on top of* the
    quadratic pair count.  The deques make each pop O(1), so draining a
    few hundred units stays comfortably interactive."""

    def _fallback_task(self, n_units):
        task = _GroupTask([FakeHandle(f"i{k}") for k in range(n_units)], None)
        task.clusters = [[FakeHandle(f"i{k}")] for k in range(n_units)]
        task.enter_fallback()
        return task

    def test_queues_are_deques(self):
        from collections import deque

        task = self._fallback_task(4)
        assert isinstance(task.pending_chunks, deque)
        assert isinstance(task.fallback_pairs, deque)

    def test_large_group_pair_drain_is_not_quadratic_in_pops(self):
        import time

        n = 350  # ~61k pairs; list.pop(0) needed ~1.9e9 element shifts
        task = self._fallback_task(n)
        start = time.perf_counter()
        drained = 0
        while task.next_fallback_pair() is not None:
            i, j = task.fallback_pairs.popleft()
            task.record_fallback_negative(i, j)
            drained += 1
        elapsed = time.perf_counter() - start
        assert drained == n * (n - 1) // 2
        assert task.next_fallback_pair() is None
        # Generous even for slow CI machines, far below what the O(n)
        # front-pop would cost at this scale.
        assert elapsed < 5.0
        task.finish_fallback()
        assert len(task.clusters) == n
