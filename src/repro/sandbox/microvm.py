"""Gen 2 execution environment: lightweight VM with hardware virtualization.

In Gen 2 the guest runs on virtualized hardware: the hypervisor traps
``cpuid`` (hiding the host CPU model) and programs *TSC offsetting* so that
``rdtsc`` returns the host TSC minus its value at guest boot (paper §4.5).
Boot-time fingerprinting therefore only recovers the guest VM's boot time.

However, the guest TSC still ticks at the host's true rate, and KVM exports
the host kernel's *refined* TSC frequency to the guest for timekeeping.
Since the attacker has root inside the guest VM, reading that value is
trivial — and it becomes the Gen 2 host fingerprint.
"""

from __future__ import annotations

from repro import units
from repro.sandbox.base import Sandbox, TscPolicy

#: Precision to which Linux refines the TSC frequency at boot (paper §4.5).
KERNEL_REFINEMENT_PRECISION_HZ: float = 1.0 * units.KHZ


class MicroVMSandbox(Sandbox):
    """A Firecracker-style microVM sandbox (hardware virtualization).

    TSC offsetting and ``cpuid`` trapping reshape the *identification*
    surface, but the hypervisor does not virtualize shared-resource
    contention: ``RDRAND`` and memory-bus pressure still reach host
    hardware, so the inherited covert-channel surface — including the
    batched observation ports the vectorized CTest engine uses — behaves
    identically to Gen 1 (paper §4.5 relies on exactly this).
    """

    generation = "gen2"

    #: Model string the hypervisor fabricates for trapped ``cpuid``.
    VIRTUALIZED_MODEL = "Virtual CPU @ 2.00GHz"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # TSC offsetting: the hypervisor saves the host TSC at guest boot
        # and subtracts it from every guest read.
        self._tsc_offset = self._host.tsc.offset_for_guest(self.boot_wall_time)

    def rdtsc(self) -> int:
        """Guest ``rdtsc``: host TSC with the boot-time offset applied.

        Under the ``EMULATED`` mitigation the hypervisor traps the
        instruction entirely and serves a reported-frequency counter,
        hiding the host's true tick rate as well.
        """
        if self.tsc_policy is TscPolicy.EMULATED:
            return self._emulated_rdtsc()
        return self._host.tsc.read(self._clock.now()) - self._tsc_offset

    def cpuid_model(self) -> str:
        """``cpuid`` is trapped: the guest sees a fabricated model string."""
        return self.VIRTUALIZED_MODEL

    def kernel_tsc_khz(self) -> float:
        """Read the refined host TSC frequency exported by KVM, in kHz.

        The attacker has root in the guest, so this is a plain kernel read
        (e.g. ``/sys/devices/system/clocksource/.../tsc_khz``).  Linux only
        refines to 1 kHz precision, which is why distinct hosts can collide
        on this fingerprint (paper §4.5).

        Under the ``EMULATED`` mitigation the hypervisor advertises the
        reported frequency instead, masking the per-host deviation.
        """
        if self.tsc_policy is TscPolicy.EMULATED:
            return self._host.cpu.reported_tsc_frequency_hz / units.KHZ
        refined = self._host.tsc.refined_frequency_hz(KERNEL_REFINEMENT_PRECISION_HZ)
        return refined / units.KHZ

    def proc_uptime(self) -> float:
        """``/proc/uptime`` in the guest reflects guest, not host, uptime."""
        return self._clock.now() - self.boot_wall_time
