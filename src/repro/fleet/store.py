"""The columnar fleet store.

All per-host scalar state lives here as NumPy columns indexed by a dense
host index (0..n_hosts-1).  Host ids are resolved to indices once at the
boundary; everything inside the cloud layers is index math.

Mutation rights (enforced by convention, documented in ``docs/API.md``):

* the :class:`~repro.cloud.datacenter.DataCenter` owns pool membership,
  pool ordering, and shard assignment (``set_pool``/``rotate``/
  ``assign_shards``);
* the :class:`~repro.cloud.orchestrator.Orchestrator` owns load slots and
  per-service instance counts (through :class:`~repro.fleet.view.HostHandle`
  or the ``add_load``/``release_load``/``service_counts`` methods);
* everyone else reads, preferably through
  :class:`~repro.fleet.view.FleetView`.

Determinism contract: the store never iterates sets or dicts in a way that
depends on hash order — pool and rotation state are *ordered* index arrays,
so every RNG draw over them is PYTHONHASHSEED-independent.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import overload

import numpy as np
from numpy.typing import NDArray

from repro.errors import CloudError

FloatColumn = NDArray[np.float64]
BoolColumn = NDArray[np.bool_]
IndexArray = NDArray[np.int64]
IntColumn = NDArray[np.int64]


class SparseServiceCounts:
    """Per-host instance counts for one service, stored sparsely.

    A service only ever runs on the hosts placement gave it — a base
    shard plus recruited helpers, a few hundred hosts at most — while the
    fleet can hold 100k+.  Dense per-service columns therefore cost
    O(hosts x services) resident memory once a background-traffic engine
    deploys thousands of tenants; this structure keeps a *sorted* host
    index array plus a parallel count array, so the store stays O(hosts)
    plus O(touched hosts) per service (the scaling contract in
    ``docs/DESIGN.md``).

    Semantics are exactly a dense int64 column of zeros with the stored
    entries overlaid: reads of untouched hosts return 0, and the batched
    gather (``counts[index_array]``) is pinned equal to dense fancy
    indexing by the twin-world and Hypothesis equivalence suites.  Counts
    are pure bookkeeping — they never feed an RNG draw — so the
    representation swap cannot perturb the byte-identity contract.

    Entries whose count returns to zero are kept (a terminated service's
    footprint is bounded by its lifetime placement, never by fleet size).
    """

    __slots__ = ("n_hosts", "_idx", "_cnt")

    def __init__(
        self,
        n_hosts: int,
        indices: IndexArray | None = None,
        counts: IntColumn | None = None,
    ) -> None:
        self.n_hosts = n_hosts
        if indices is None or counts is None:
            self._idx: IndexArray = np.empty(0, dtype=np.int64)
            self._cnt: IntColumn = np.empty(0, dtype=np.int64)
        else:
            self._idx = np.asarray(indices, dtype=np.int64)
            self._cnt = np.asarray(counts, dtype=np.int64)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def touched(self) -> int:
        """Number of stored (ever-placed-on) host entries."""
        return int(self._idx.size)

    def get(self, index: int) -> int:
        """Count on one host (0 when the host was never touched)."""
        pos = int(np.searchsorted(self._idx, index))
        if pos < self._idx.size and self._idx[pos] == index:
            return int(self._cnt[pos])
        return 0

    def gather(self, indices: IndexArray) -> IntColumn:
        """Counts for an index array — equals dense ``column[indices]``."""
        wanted = np.asarray(indices, dtype=np.int64)
        if self._idx.size == 0:
            return np.zeros(wanted.size, dtype=np.int64)
        # Clamp out-of-range positions to the last entry: a wanted index
        # greater than every stored one can't equal _idx[-1] (searchsorted
        # would have returned its exact position otherwise), so the
        # equality test still reads False for misses.
        pos = self._idx.searchsorted(wanted)
        np.minimum(pos, self._idx.size - 1, out=pos)
        out: IntColumn = np.where(self._idx[pos] == wanted, self._cnt[pos], 0)
        return out

    @overload
    def __getitem__(self, key: int) -> int: ...

    @overload
    def __getitem__(self, key: IndexArray) -> IntColumn: ...

    def __getitem__(self, key: int | IndexArray) -> int | IntColumn:
        if isinstance(key, (int, np.integer)):
            return self.get(int(key))
        return self.gather(key)

    def total(self) -> int:
        """Sum of all counts."""
        return int(self._cnt.sum())

    def sum(self) -> int:
        """Alias of :meth:`total`, mirroring ``ndarray.sum()``."""
        return self.total()

    def to_dense(self) -> IntColumn:
        """Materialize the equivalent dense column (tests/diagnostics)."""
        dense: IntColumn = np.zeros(self.n_hosts, dtype=np.int64)
        dense[self._idx] = self._cnt
        return dense

    def tolist(self) -> list[int]:
        """Dense list form, mirroring ``ndarray.tolist()`` (tests)."""
        return [int(v) for v in self.to_dense()]

    def nonzero_items(self) -> list[tuple[int, int]]:
        """Sorted ``(host_index, count)`` pairs with count > 0."""
        live = self._cnt > 0
        return [
            (int(i), int(c)) for i, c in zip(self._idx[live], self._cnt[live])
        ]

    # ------------------------------------------------------------------
    # Mutation (orchestrator only)
    # ------------------------------------------------------------------
    def _ensure_entry(self, index: int) -> int:
        """Position of ``index`` in the entry arrays, inserting a zero."""
        pos = int(np.searchsorted(self._idx, index))
        if pos == self._idx.size or self._idx[pos] != index:
            self._idx = np.insert(self._idx, pos, index)
            self._cnt = np.insert(self._cnt, pos, 0)
        return pos

    def __setitem__(self, key: int, value: int) -> None:
        # _ensure_entry may rebind _cnt; resolve the position first.
        pos = self._ensure_entry(int(key))
        self._cnt[pos] = value

    def inc(self, index: int, n: int = 1) -> None:
        """Count ``n`` more instances on one host."""
        pos = self._ensure_entry(int(index))
        self._cnt[pos] += n

    def dec(self, index: int) -> None:
        """Count one fewer instance on one host; never goes negative."""
        pos = int(np.searchsorted(self._idx, index))
        if pos < self._idx.size and self._idx[pos] == index and self._cnt[pos] > 0:
            self._cnt[pos] -= 1

    def set_dense(self, values: IntColumn) -> None:
        """Replace all entries from a dense length-``n_hosts`` column.

        Test scaffolding for seeding uneven starting counts; only nonzero
        hosts get entries.
        """
        dense = np.asarray(values, dtype=np.int64)
        self._idx = np.flatnonzero(dense).astype(np.int64)
        self._cnt = dense[self._idx]

    def add_at(self, indices: IndexArray) -> None:
        """Batched increment — equals dense ``np.add.at(column, indices, 1)``.

        One sort + merge per launch batch instead of a Python-level
        searchsorted per instance; the orchestrator's batched launch path
        uses this to commit a whole placement decision at once.
        """
        placed = np.asarray(indices, dtype=np.int64)
        if placed.size == 0:
            return
        if self._idx.size:
            # Steady-state fast path: every placed host already has an
            # entry (true for all but a service's first launch onto a
            # host), so the whole batch is one searchsorted + add.at with
            # no unique/merge work.
            pos = self._idx.searchsorted(placed)
            clamped = np.minimum(pos, self._idx.size - 1)
            if bool((self._idx[clamped] == placed).all()):
                np.add.at(self._cnt, pos, 1)
                return
        unique, add = np.unique(placed, return_counts=True)
        pos = np.searchsorted(self._idx, unique)
        in_range = pos < self._idx.size
        hit = np.zeros(unique.size, dtype=bool)
        hit[in_range] = self._idx[pos[in_range]] == unique[in_range]
        self._cnt[pos[hit]] += add[hit]
        fresh = ~hit
        if fresh.any():
            ins = np.searchsorted(self._idx, unique[fresh])
            self._idx = np.insert(self._idx, ins, unique[fresh])
            self._cnt = np.insert(self._cnt, ins, add[fresh])

    # ------------------------------------------------------------------
    # Copy / restore
    # ------------------------------------------------------------------
    def copy(self) -> "SparseServiceCounts":
        """An isolated copy (snapshots)."""
        return SparseServiceCounts(
            self.n_hosts, self._idx.copy(), self._cnt.copy()
        )

    def restore_from(self, other: "SparseServiceCounts") -> None:
        """Overwrite this instance's entries in place from ``other``.

        In-place so references held by callers (placement requests, host
        handles) stay valid across a snapshot/restore round trip.
        """
        self.n_hosts = other.n_hosts
        self._idx = other._idx.copy()
        self._cnt = other._cnt.copy()


@dataclass(frozen=True)
class FleetSnapshot:
    """An immutable copy of every mutable fleet column.

    Produced by :meth:`FleetStore.snapshot` and consumed by
    :meth:`FleetStore.restore`; tests use the pair instead of deep-copying
    host dicts.
    """

    load_slots: FloatColumn
    capacity_slots: FloatColumn
    in_pool: BoolColumn
    shard_index: NDArray[np.int32]
    pool_order: IndexArray
    rotated_order: IndexArray
    pool_version: int
    service_counts: dict[str, SparseServiceCounts]


class FleetStore:
    """Columnar per-host scalar state with a stable id <-> index mapping.

    Parameters
    ----------
    host_ids:
        Host identifiers in fleet order; the position of an id *is* its
        index for the lifetime of the store.
    capacity_slots:
        Per-host capacity in Small-instance slots (scalar broadcasts).
    problematic_timing:
        Per-host noisy-timing flags (paper §4.2); defaults to all-False.
    """

    def __init__(
        self,
        host_ids: Sequence[str],
        capacity_slots: float | Sequence[float] = 160.0,
        problematic_timing: Sequence[bool] | None = None,
    ) -> None:
        self._ids: tuple[str, ...] = tuple(host_ids)
        n = len(self._ids)
        self._index: dict[str, int] = {h: i for i, h in enumerate(self._ids)}
        if len(self._index) != n:
            raise CloudError("duplicate host ids in fleet")
        self.capacity_slots: FloatColumn = np.broadcast_to(
            np.asarray(capacity_slots, dtype=np.float64), (n,)
        ).copy()
        self.load_slots: FloatColumn = np.zeros(n, dtype=np.float64)
        self.in_pool: BoolColumn = np.zeros(n, dtype=bool)
        self.shard_index: NDArray[np.int32] = np.full(n, -1, dtype=np.int32)
        self.problematic_timing: BoolColumn
        if problematic_timing is None:
            self.problematic_timing = np.zeros(n, dtype=bool)
        else:
            self.problematic_timing = np.asarray(problematic_timing, dtype=bool).copy()
            if self.problematic_timing.shape != (n,):
                raise CloudError("problematic_timing length does not match fleet")
        self._all_indices: IndexArray = np.arange(n, dtype=np.int64)
        self._ids_arr: NDArray[np.object_] = np.array(self._ids, dtype=object)
        self._pool_order: IndexArray = np.empty(0, dtype=np.int64)
        self._rotated_order: IndexArray = np.empty(0, dtype=np.int64)
        self._shard_orders: list[IndexArray] = []
        self._pool_version = 0
        self._service_counts: dict[str, SparseServiceCounts] = {}

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def n_hosts(self) -> int:
        return len(self._ids)

    @property
    def ids(self) -> tuple[str, ...]:
        """All host ids in index order."""
        return self._ids

    @property
    def all_indices(self) -> IndexArray:
        """Every host index, ascending.  Treat as read-only."""
        return self._all_indices

    def index_of(self, host_id: str) -> int:
        """Dense index of a host id."""
        try:
            return self._index[host_id]
        except KeyError:
            raise CloudError(f"unknown host {host_id!r}") from None

    def host_id(self, index: int) -> str:
        """Host id at a dense index."""
        return self._ids[index]

    def indices_of(self, host_ids: Iterable[str]) -> IndexArray:
        """Resolve host ids to an index array, preserving order."""
        index = self._index
        try:
            return np.fromiter(
                (index[h] for h in host_ids), dtype=np.int64
            )
        except KeyError as exc:  # pragma: no cover - caller bug
            raise CloudError(f"unknown host {exc.args[0]!r}") from None

    def ids_of(self, indices: IndexArray) -> tuple[str, ...]:
        """Host ids for an index array, preserving order.

        One fancy-index gather over a cached object-dtype column instead
        of a Python loop — at 64x fleet scale a serving-pool resolve is a
        20k-element gather on every pool-version bump.
        """
        gathered: list[str] = self._ids_arr[
            np.asarray(indices, dtype=np.int64)
        ].tolist()
        return tuple(gathered)

    def mask_for_ids(self, host_ids: Iterable[str]) -> BoolColumn:
        """Boolean membership mask over the fleet for a set of host ids."""
        mask = np.zeros(self.n_hosts, dtype=bool)
        mask[self.indices_of(host_ids)] = True
        return mask

    def mask_for_indices(self, indices: IndexArray) -> BoolColumn:
        """Boolean membership mask over the fleet for an index array."""
        mask = np.zeros(self.n_hosts, dtype=bool)
        mask[indices] = True
        return mask

    # ------------------------------------------------------------------
    # Serving pool and rotation
    # ------------------------------------------------------------------
    @property
    def pool_order(self) -> IndexArray:
        """Serving-pool host indices in pool order.  Treat as read-only."""
        return self._pool_order

    @property
    def rotated_order(self) -> IndexArray:
        """Rotated-out host indices in rotation order.  Treat as read-only."""
        return self._rotated_order

    @property
    def pool_version(self) -> int:
        """Bumped on every pool-membership change (cache invalidation)."""
        return self._pool_version

    def set_pool(self, pool_indices: IndexArray) -> None:
        """Install the initial serving pool (in the given draw order).

        Hosts not in the pool become the rotated-out set in ascending index
        order — the same order as the pre-columnar list comprehension over
        fleet order.
        """
        pool = np.asarray(pool_indices, dtype=np.int64).copy()
        self.in_pool[:] = False
        self.in_pool[pool] = True
        self._pool_order = pool
        self._rotated_order = self._all_indices[~self.in_pool].copy()
        self._pool_version += 1

    def rotate(self, out_positions: IndexArray, in_positions: IndexArray) -> None:
        """Swap pool members at ``out_positions`` with rotated-out hosts at
        ``in_positions`` (positions into the respective *order* arrays).

        Order semantics match the historical list implementation exactly:
        survivors keep their relative order, swapped-in hosts append in
        draw order, and the displaced hosts append to the rotated-out set
        in draw order.
        """
        pool, rotated = self._pool_order, self._rotated_order
        out_ids = pool[out_positions]
        in_ids = rotated[in_positions]
        keep_pool = np.ones(len(pool), dtype=bool)
        keep_pool[out_positions] = False
        keep_rot = np.ones(len(rotated), dtype=bool)
        keep_rot[in_positions] = False
        self._pool_order = np.concatenate([pool[keep_pool], in_ids])
        self._rotated_order = np.concatenate([rotated[keep_rot], out_ids])
        self.in_pool[out_ids] = False
        self.in_pool[in_ids] = True
        self._pool_version += 1

    # ------------------------------------------------------------------
    # Shards
    # ------------------------------------------------------------------
    def assign_shards(self, shard_size: int, n_shards: int) -> None:
        """Pin shard membership to the current pool order.

        Shard *i* is the ``i``-th ``shard_size``-slice of the pool; the
        assignment is permanent (hosts keep their shard when they rotate
        out, reproducing Observations 3-4).  The assignment-time ordering
        inside each shard is preserved — it determines the order RNG
        tiebreaks are drawn in during placement.
        """
        self.shard_index[:] = -1
        self._shard_orders = []
        for i in range(n_shards):
            members = self._pool_order[i * shard_size : (i + 1) * shard_size].copy()
            self.shard_index[members] = i
            self._shard_orders.append(members)

    @property
    def n_shards(self) -> int:
        return len(self._shard_orders)

    def shard_members(self, shard: int) -> IndexArray:
        """Indices of one shard's hosts, in pool-assignment order.

        Treat as read-only.
        """
        if not 0 <= shard < len(self._shard_orders):
            raise CloudError(
                f"shard {shard} out of range (fleet has {len(self._shard_orders)})"
            )
        return self._shard_orders[shard]

    # ------------------------------------------------------------------
    # Load slots
    # ------------------------------------------------------------------
    def add_load(self, index: int, slots: float) -> None:
        """Commit capacity slots on one host."""
        self.load_slots[index] += slots

    def release_load(self, index: int, slots: float) -> None:
        """Release capacity slots on one host, clamping at zero."""
        remaining = self.load_slots[index] - slots
        self.load_slots[index] = remaining if remaining > 0.0 else 0.0

    # ------------------------------------------------------------------
    # Per-service instance counts
    # ------------------------------------------------------------------
    def service_counts(self, service_key: str) -> SparseServiceCounts:
        """The sparse per-host instance counts for one service.

        Allocated lazily (empty, reads as all-zero) on first access; the
        orchestrator mutates it through
        :class:`~repro.fleet.view.HostHandle` or the batched
        :meth:`SparseServiceCounts.add_at`.  Sparse rather than a dense
        column so total store memory is O(hosts), not O(hosts x services)
        (the hyperscale scaling contract).
        """
        counts = self._service_counts.get(service_key)
        if counts is None:
            counts = SparseServiceCounts(self.n_hosts)
            self._service_counts[service_key] = counts
        return counts

    def peek_service_counts(self, service_key: str) -> SparseServiceCounts | None:
        """The counts if they exist, else ``None`` (no allocation)."""
        return self._service_counts.get(service_key)

    def service_counts_touched(self) -> int:
        """Total stored (service, host) entries across all services.

        Diagnostic for the memory-ceiling gate: grows with placement
        footprints, never with ``n_hosts * n_services``.
        """
        return sum(c.touched for c in self._service_counts.values())

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> FleetSnapshot:
        """Copy every mutable column into an immutable snapshot."""
        return FleetSnapshot(
            load_slots=self.load_slots.copy(),
            capacity_slots=self.capacity_slots.copy(),
            in_pool=self.in_pool.copy(),
            shard_index=self.shard_index.copy(),
            pool_order=self._pool_order.copy(),
            rotated_order=self._rotated_order.copy(),
            pool_version=self._pool_version,
            service_counts={
                key: counts.copy() for key, counts in self._service_counts.items()
            },
        )

    def restore(self, snap: FleetSnapshot) -> None:
        """Restore every mutable column from a snapshot.

        Service-count columns created after the snapshot are dropped;
        columns present in the snapshot are restored in place where
        possible so existing references stay valid.
        """
        self.load_slots[:] = snap.load_slots
        self.capacity_slots[:] = snap.capacity_slots
        self.in_pool[:] = snap.in_pool
        self.shard_index[:] = snap.shard_index
        self._pool_order = snap.pool_order.copy()
        self._rotated_order = snap.rotated_order.copy()
        self._pool_version = snap.pool_version
        for key in list(self._service_counts):
            if key not in snap.service_counts:
                del self._service_counts[key]
        for key, counts in snap.service_counts.items():
            existing = self._service_counts.get(key)
            if existing is None:
                self._service_counts[key] = counts.copy()
            else:
                existing.restore_from(counts)
