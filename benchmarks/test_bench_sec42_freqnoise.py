"""§4.2: measured-TSC-frequency noise across hosts.

Paper: most hosts show standard deviations under 100 Hz over ~100 ms
windows, but 58 of 586 hosts (~10%) show 10 kHz up to a few MHz — ruling
out the measured-frequency method for fingerprinting.
"""

from repro import units
from repro.experiments import frequency_noise as fn
from repro.experiments.report import ComparisonRow, format_comparison

from benchmarks.conftest import run_once

CONFIG = fn.FrequencyNoiseConfig()


def test_sec42_measured_frequency_noise(benchmark, emit, runner):
    result = run_once(benchmark, lambda: fn.run(CONFIG, runner=runner))

    emit(
        format_comparison(
            "§4.2 — measured TSC frequency noise (one instance per host)",
            [
                ComparisonRow("hosts evaluated", "586", str(result.n_hosts)),
                ComparisonRow(
                    "problematic hosts (std >= 10 kHz)",
                    f"{100 * fn.PAPER_PROBLEMATIC_FRACTION:.0f}%",
                    f"{100 * result.problematic_fraction:.0f}%",
                ),
                ComparisonRow(
                    "quiet hosts (std < 100 Hz)",
                    "most",
                    f"{100 * result.quiet_fraction:.0f}%",
                ),
                ComparisonRow(
                    "max std observed",
                    "a few MHz",
                    f"{result.max_std_hz / 1e6:.2f} MHz",
                ),
            ],
        )
    )

    assert result.n_hosts > 150
    assert 0.05 < result.problematic_fraction < 0.18
    assert result.quiet_fraction > 0.75
    # Problematic hosts reach the 10 kHz - MHz regime the paper reports.
    assert result.max_std_hz > 30 * units.KHZ
    # The two regimes are separated: nothing sits between 1 and 10 kHz.
    grey_zone = [s for s in result.stds_hz if 2e3 < s < 1e4]
    assert len(grey_zone) < 0.05 * result.n_hosts
