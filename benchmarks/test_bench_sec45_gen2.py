"""§4.5: Gen 2 fingerprint accuracy (refined TSC frequency).

Paper: FMI 0.66, precision 0.48, recall 1.0 (no false negatives possible),
and on average 2.0 hosts share one fingerprint.
"""

from repro.experiments import gen2_accuracy as g2
from repro.experiments.report import ComparisonRow, format_comparison

from benchmarks.conftest import run_once

CONFIG = g2.Gen2AccuracyConfig(repetitions=2)  # paper: 5 reps x 3 DCs


def test_sec45_gen2_fingerprint_accuracy(benchmark, emit, runner):
    result = run_once(benchmark, lambda: g2.run(CONFIG, runner=runner))

    emit(
        format_comparison(
            "§4.5 — Gen 2 fingerprint accuracy",
            [
                ComparisonRow("FMI", f"{g2.PAPER_FMI:.2f}", f"{result.fmi_mean:.2f}"),
                ComparisonRow(
                    "precision", f"{g2.PAPER_PRECISION:.2f}", f"{result.precision_mean:.2f}"
                ),
                ComparisonRow("recall", "1.00", f"{result.recall_mean:.2f}"),
                ComparisonRow(
                    "hosts per fingerprint",
                    f"{g2.PAPER_HOSTS_PER_FINGERPRINT:.1f}",
                    f"{result.hosts_per_fingerprint_mean:.1f}",
                ),
            ],
        )
    )

    # No false negatives, by construction of the refined frequency.
    assert result.recall_mean == 1.0
    # Collisions make precision clearly imperfect, in the paper's band.
    assert 0.25 < result.precision_mean < 0.75
    assert 0.45 < result.fmi_mean < 0.85
    assert 1.2 < result.hosts_per_fingerprint_mean < 3.0
    # Gen 2 is distinctly less accurate than Gen 1's ~0.9999 FMI.
    assert result.fmi_mean < 0.9
