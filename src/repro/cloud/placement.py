"""Host selection for new container instances.

Implements the placement behavior observed in the paper: a typical FaaS
orchestrator filters feasible hosts and picks the best-scoring one by
resource utilization and load balancing (§2.2).  Observation 1 shows the
visible outcome on Cloud Run — instances of a service spread *near-uniformly*
across the hosts used — so the scorer here balances the *service's own*
per-host instance count (anti-affinity-style spreading) with random
tie-breaking, subject to per-host total-capacity limits.  Balancing on the
service's own count rather than total host load is what makes a launch
spread 800 instances 10-11 per host (Exp. 1) regardless of other tenants.

In dynamic regions (us-central1), a per-account fraction of instances
scatters off the allowed set onto arbitrary fleet hosts; see
:class:`~repro.cloud.topology.AccountPlacementPlan`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import NoCapacityError


@dataclass
class PlacementRequest:
    """One batch placement request.

    Attributes
    ----------
    count:
        Number of instances to place.
    slots_per_instance:
        Host capacity slots each instance consumes (see
        :meth:`repro.cloud.services.ContainerSize.slots`).
    allowed_host_ids:
        The service's preferred hosts (base plus recruited helpers).
    scatter_probability:
        Per-instance chance of being scattered onto a random fleet host
        instead of the allowed set (0 outside dynamic regions).
    scatter_candidate_ids:
        Hosts eligible as scatter targets (normally the whole fleet).
    """

    count: int
    slots_per_instance: float
    allowed_host_ids: list[str]
    service_host_counts: dict[str, int] | None = None
    scatter_probability: float = 0.0
    scatter_candidate_ids: list[str] | None = None


class PlacementPolicy:
    """Least-loaded near-uniform placement over an allowed host set."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def place(
        self,
        request: PlacementRequest,
        load_slots: dict[str, float],
        capacity_slots: dict[str, float],
    ) -> list[str]:
        """Choose a host for each requested instance.

        Parameters
        ----------
        request:
            The batch to place.
        load_slots:
            Current slot usage per host (mutated as instances are placed so
            the batch itself spreads uniformly).
        capacity_slots:
            Slot capacity per host.

        Returns
        -------
        list of host ids, one per instance.

        Raises
        ------
        NoCapacityError
            If no feasible host remains for some instance.
        """
        if not request.allowed_host_ids:
            raise NoCapacityError("placement request has no allowed hosts")

        service_counts = request.service_host_counts or {}
        # Min-heap over (service instance count, random tiebreak, host).
        # Counts only grow during a batch, so hosts popped as full stay full.
        heap: list[tuple[int, float, str]] = [
            (service_counts.get(h, 0), float(self._rng.random()), h)
            for h in request.allowed_host_ids
        ]
        heapq.heapify(heap)
        scatter_pool = request.scatter_candidate_ids or []

        chosen: list[str] = []
        for _ in range(request.count):
            host_id: str | None = None
            if (
                request.scatter_probability > 0.0
                and scatter_pool
                and self._rng.random() < request.scatter_probability
            ):
                host_id = self._pick_scatter_host(
                    scatter_pool, request.slots_per_instance, load_slots, capacity_slots
                )
            if host_id is None:
                host_id = self._pop_least_used(
                    heap, request.slots_per_instance, load_slots, capacity_slots
                )
            if host_id is None:
                raise NoCapacityError(
                    f"no host among {len(request.allowed_host_ids)} allowed and "
                    f"{len(scatter_pool)} scatter candidates has "
                    f"{request.slots_per_instance} free slots"
                )
            load_slots[host_id] = (
                load_slots.get(host_id, 0.0) + request.slots_per_instance
            )
            chosen.append(host_id)
        return chosen

    def _pop_least_used(
        self,
        heap: list[tuple[int, float, str]],
        slots: float,
        load_slots: dict[str, float],
        capacity_slots: dict[str, float],
    ) -> str | None:
        while heap:
            count, tiebreak, host_id = heapq.heappop(heap)
            load = load_slots.get(host_id, 0.0)
            if load + slots > capacity_slots.get(host_id, 0.0):
                continue  # permanently full for this batch
            heapq.heappush(heap, (count + 1, tiebreak, host_id))
            return host_id
        return None

    def _pick_scatter_host(
        self,
        scatter_pool: list[str],
        slots: float,
        load_slots: dict[str, float],
        capacity_slots: dict[str, float],
    ) -> str | None:
        """Pick a random feasible scatter target (a few rejection samples)."""
        for _ in range(16):
            host_id = scatter_pool[int(self._rng.integers(len(scatter_pool)))]
            load = load_slots.get(host_id, 0.0)
            if load + slots <= capacity_slots.get(host_id, 0.0):
                return host_id
        return None
