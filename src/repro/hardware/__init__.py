"""Simulated host hardware.

This package models the pieces of physical-host hardware that the paper's
fingerprinting techniques touch: the CPU identification surface (``cpuid``),
the invariant timestamp counter (``rdtsc``/``rdtscp``), and the shared
hardware random number generator used as a covert channel.
"""

from repro.hardware.cpu import CPUModel, DEFAULT_CPU_CATALOG, cpu_catalog
from repro.hardware.host import HostFleetConfig, PhysicalHost, build_fleet
from repro.hardware.noise import (
    SyscallNoiseModel,
    TscErrorModel,
    problematic_noise_model,
    quiet_noise_model,
)
from repro.hardware.rng_resource import RngContentionResource
from repro.hardware.tsc import TimestampCounter

__all__ = [
    "CPUModel",
    "DEFAULT_CPU_CATALOG",
    "cpu_catalog",
    "HostFleetConfig",
    "PhysicalHost",
    "build_fleet",
    "SyscallNoiseModel",
    "TscErrorModel",
    "problematic_noise_model",
    "quiet_noise_model",
    "RngContentionResource",
    "TimestampCounter",
]
