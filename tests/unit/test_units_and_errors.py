"""Unit tests for the units helpers and the exception hierarchy."""

import pytest

from repro import errors, units


class TestUnits:
    def test_time_conversions(self):
        assert units.minutes(2) == 120.0
        assert units.hours(1.5) == 5400.0
        assert units.days(2) == 172800.0

    def test_frequency_conversions(self):
        assert units.khz(3) == 3000.0
        assert units.mhz(2) == 2_000_000.0
        assert units.ghz(2.2) == pytest.approx(2.2e9)

    def test_constant_relations(self):
        assert units.MINUTE == 60 * units.SECOND
        assert units.HOUR == 60 * units.MINUTE
        assert units.DAY == 24 * units.HOUR
        assert units.GHZ == 1000 * units.MHZ == 1_000_000 * units.KHZ


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_cls",
        [
            errors.SimulationError,
            errors.ClockError,
            errors.HardwareError,
            errors.SandboxError,
            errors.PrivilegeError,
            errors.CloudError,
            errors.QuotaExceededError,
            errors.NoCapacityError,
            errors.InstanceGoneError,
            errors.VerificationError,
            errors.FingerprintError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_cls):
        assert issubclass(error_cls, errors.ReproError)

    def test_privilege_is_sandbox_error(self):
        assert issubclass(errors.PrivilegeError, errors.SandboxError)

    def test_quota_and_capacity_are_cloud_errors(self):
        assert issubclass(errors.QuotaExceededError, errors.CloudError)
        assert issubclass(errors.NoCapacityError, errors.CloudError)

    def test_clock_error_is_simulation_error(self):
        assert issubclass(errors.ClockError, errors.SimulationError)

    def test_catching_base_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.InstanceGoneError("gone")
