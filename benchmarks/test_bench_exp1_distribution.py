"""Experiment 1 (Observation 1): distribution of 800 instances over hosts.

Paper: 800 instances of one service land on 75 hosts, with the majority of
hosts running 10 or 11 instances (near-uniform).
"""

from repro.experiments import launch_behavior as lb
from repro.experiments.report import ComparisonRow, format_comparison

from benchmarks.conftest import run_once

CONFIG = lb.DistributionConfig()


def test_exp1_instance_distribution(benchmark, emit, runner):
    result = run_once(benchmark, lambda: lb.run_distribution(CONFIG, runner=runner))

    emit(
        format_comparison(
            "Experiment 1 — 800 instances of one service",
            [
                ComparisonRow("hosts used", str(lb.PAPER_EXP1_HOSTS), str(result.n_hosts)),
                ComparisonRow(
                    "typical instances per host",
                    "10-11",
                    f"{result.min_per_host}-{result.max_per_host}",
                ),
                ComparisonRow(
                    "hosts at the two modal counts",
                    "majority",
                    f"{100 * result.modal_share:.0f}%",
                ),
            ],
        )
    )

    assert abs(result.n_hosts - lb.PAPER_EXP1_HOSTS) <= 5
    assert result.min_per_host >= 9
    assert result.max_per_host <= 12
    assert result.modal_share > 0.5
