"""Inferring orchestrator policy parameters from black-box observations.

The paper reverse engineers Cloud Run qualitatively (Observations 1-6).
This module pushes one step further — the natural "future work" — by
*quantifying* the hidden policy from the same black-box measurements:

* base-host-set size, from cold-launch footprints;
* the idle grace period and termination deadline, from a Fig. 6-style
  termination curve;
* the load balancer's hot window, from an interval sweep (the largest
  interval that still recruits helper hosts);
* the helper recruitment rate (hosts recruited per newly created
  instance), by combining a hot launch series with the fitted idle model.

An attacker uses these estimates to plan launch schedules without further
probing; :mod:`repro.experiments` uses them to close the loop and check the
simulator's parameters are recoverable from the outside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class IdlePolicyEstimate:
    """Estimated idle-instance termination policy.

    Attributes
    ----------
    grace_s:
        Estimated time idle instances are always preserved.
    deadline_s:
        Estimated time by which all idle instances are gone.
    """

    grace_s: float
    deadline_s: float

    def survival_fraction(self, idle_s: float) -> float:
        """Expected fraction of idle instances alive after ``idle_s``.

        Assumes per-instance termination times uniform on
        ``[grace, deadline]`` — the shape a linear decay implies.
        """
        if idle_s <= self.grace_s:
            return 1.0
        if idle_s >= self.deadline_s:
            return 0.0
        return (self.deadline_s - idle_s) / (self.deadline_s - self.grace_s)


def fit_idle_policy(
    series: Sequence[tuple[float, int]], total_instances: int
) -> IdlePolicyEstimate:
    """Fit the idle-termination policy from a Fig. 6-style curve.

    Parameters
    ----------
    series:
        ``(minutes_since_disconnect, instances_alive)`` samples.
    total_instances:
        The initial instance count.

    The grace period is the last time the full fleet was still alive; the
    deadline is extrapolated from a linear fit of the decaying segment
    (more robust than the first all-dead sample, which overshoots by one
    sampling interval).
    """
    if len(series) < 3:
        raise ValueError("need at least 3 samples to fit the idle policy")
    times = np.array([t for t, _n in series], dtype=float) * 60.0
    alive = np.array([n for _t, n in series], dtype=float)

    full = times[alive >= total_instances]
    grace = float(full.max()) if full.size else 0.0

    decaying = (alive < total_instances) & (alive > 0)
    if decaying.sum() >= 2:
        slope, intercept = np.polyfit(times[decaying], alive[decaying], deg=1)
        deadline = float(-intercept / slope) if slope < 0 else float(times.max())
    else:
        dead = times[alive <= 0]
        deadline = float(dead.min()) if dead.size else float(times.max())
    return IdlePolicyEstimate(grace_s=grace, deadline_s=max(deadline, grace))


def estimate_base_set_size(cold_footprints: Sequence[int]) -> int:
    """Estimate the per-account base-host-set size from cold launches.

    Cold launches land on exactly the base hosts, so the footprint sizes
    concentrate at the base-set size; the median rejects stragglers.
    """
    if not cold_footprints:
        raise ValueError("need at least one cold-launch footprint")
    return int(round(float(np.median(list(cold_footprints)))))


def estimate_hot_window(
    growth_by_interval: Mapping[float, int], noise_threshold: int = 8
) -> float:
    """Estimate the load balancer's demand lookback window.

    Parameters
    ----------
    growth_by_interval:
        Launch-interval (minutes) -> cumulative footprint growth after a
        fixed number of repeated launches (Fig. 9's companion sweep).
    noise_threshold:
        Growth at or below this is considered "no recruitment" (cold
        launches show a few hosts of churn).

    Returns the midpoint between the largest interval that still recruited
    and the smallest that did not — the attacker's best bracket for the
    window, in minutes.
    """
    recruited = [i for i, g in growth_by_interval.items() if g > noise_threshold]
    quiet = [i for i, g in growth_by_interval.items() if g <= noise_threshold]
    if not recruited:
        raise ValueError("no interval showed helper recruitment")
    upper = min((i for i in quiet if i > max(recruited)), default=max(recruited))
    return (max(recruited) + upper) / 2.0


def estimate_recruit_rate(
    per_launch_footprints: Sequence[int],
    instances_per_launch: int,
    interval_s: float,
    idle_policy: IdlePolicyEstimate,
) -> float:
    """Estimate helper hosts recruited per newly created instance.

    Each hot launch must re-create the instances that idled out since the
    previous launch; the footprint growth divided by that replacement count
    is the recruitment rate.  Averaged across the hot launches of a series.
    """
    if len(per_launch_footprints) < 2:
        raise ValueError("need at least two launches to estimate recruitment")
    survival = idle_policy.survival_fraction(interval_s)
    replaced = instances_per_launch * (1.0 - survival)
    if replaced <= 0:
        raise ValueError("the interval terminates no instances; rate undefined")
    growths = np.diff(np.asarray(per_launch_footprints, dtype=float))
    positive = growths[growths > 0]
    if positive.size == 0:
        return 0.0
    return float(positive.mean() / replaced)
