"""Unit tests for experiment result export."""

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.experiments.export import ExportError, load_result, save_result, to_jsonable


@dataclasses.dataclass
class Inner:
    values: list[float]


@dataclasses.dataclass
class Outer:
    name: str
    inner: Inner
    table: dict


class TestToJsonable:
    def test_scalars_pass_through(self):
        assert to_jsonable(5) == 5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True
        assert to_jsonable(2.5) == 2.5

    def test_nonfinite_floats_become_strings(self):
        assert to_jsonable(math.inf) == "inf"
        assert to_jsonable(-math.inf) == "-inf"
        assert to_jsonable(math.nan) == "nan"

    def test_nested_dataclasses(self):
        outer = Outer(name="a", inner=Inner(values=[1.0, 2.0]), table={"k": 1})
        data = to_jsonable(outer)
        assert data == {
            "name": "a",
            "inner": {"values": [1.0, 2.0]},
            "table": {"k": 1},
        }

    def test_tuple_keys_flattened(self):
        data = to_jsonable({("us-east1", "account-2"): 0.99})
        assert data == {"us-east1/account-2": 0.99}

    def test_sets_sorted_deterministically(self):
        assert to_jsonable({3, 1, 2}) == [1, 2, 3]

    def test_numpy_scalars(self):
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.int64(7)) == 7

    def test_everything_json_dumps(self):
        outer = Outer(name="a", inner=Inner(values=[1.0]), table={(1, 2): [3]})
        json.dumps(to_jsonable(outer))

    def test_unsupported_object_rejected(self):
        class Opaque:
            pass

        with pytest.raises(ExportError):
            to_jsonable(Opaque())

    def test_depth_limit(self):
        nested: list = []
        tip = nested
        for _ in range(40):
            inner: list = []
            tip.append(inner)
            tip = inner
        with pytest.raises(ExportError):
            to_jsonable(nested)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        outer = Outer(name="r", inner=Inner(values=[0.5]), table={})
        path = tmp_path / "result.json"
        save_result(outer, path, experiment_id="fig9")
        restored = load_result(path)
        assert restored["name"] == "r"
        assert restored["inner"]["values"] == [0.5]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"whatever": 1}))
        with pytest.raises(ExportError):
            load_result(path)

    def test_real_experiment_result_exports(self, tmp_path, tiny_env):
        """A real driver result must be exportable (no leaked internals)."""
        from repro.experiments import idle_termination as it

        result = it.IdleTerminationResult(
            series=[(0.0, 10), (1.0, 5)], termination_times_min=[3.0], instances=10
        )
        save_result(result, tmp_path / "fig6.json", experiment_id="fig6")
        restored = load_result(tmp_path / "fig6.json")
        assert restored["instances"] == 10
