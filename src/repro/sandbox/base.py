"""Common sandbox interface exposed to guest probe programs.

The attacker's probe code (see :mod:`repro.core.probes`) is written once
against this interface and runs unchanged in both sandbox generations; what
differs is which operations succeed, which are emulated, and what hardware
state leaks through.
"""

from __future__ import annotations

import abc
import enum
from typing import NamedTuple

import numpy as np

from repro.hardware.channels import channel_kind
from repro.hardware.host import PhysicalHost
from repro.hardware.rng_resource import ContentionResource
from repro.sandbox.syscalls import SyscallLayer
from repro.simtime.clock import SimClock


class ChannelPort(NamedTuple):
    """Engine-side ingredients for batched covert-channel observation.

    A port bundles what :meth:`~repro.hardware.rng_resource.ContentionResource.observe_rounds`
    needs to reproduce one sandbox's scalar observation stream: the host's
    shared contention domain, the pressure-registration id, and the
    sandbox's private randomness source.  It is simulator plumbing — the
    vectorized CTest engine uses it to issue one observation call per
    *host* per test window — and must never leak into attacker logic,
    which only ever sees the scalar observe results.
    """

    resource: ContentionResource
    sandbox_id: str
    rng: np.random.Generator


class TscPolicy(enum.Enum):
    """How the environment exposes the timestamp counter to guests.

    ``NATIVE``
        ``rdtsc`` executes on bare hardware (Gen 1 default) or with only a
        constant offset applied (Gen 2 default).
    ``EMULATED``
        The kernel/hypervisor traps ``rdtsc`` and serves a virtualized
        counter that starts at zero at sandbox boot and ticks at exactly the
        reported frequency — the mitigation discussed in paper §6.  This
        hides both the host's boot time and its true frequency, at the cost
        of syscall-priced timer reads.
    """

    NATIVE = "native"
    EMULATED = "emulated"


class Sandbox(abc.ABC):
    """Abstract sandboxed execution environment on one physical host.

    Parameters
    ----------
    host:
        The physical host this sandbox runs on.
    clock:
        Shared simulated wall clock.
    rng:
        Per-sandbox randomness source (jitter, scheduling noise).
    sandbox_id:
        Identifier used to register RNG pressure on the host.
    tsc_policy:
        Whether the TSC is exposed natively or emulated (mitigation).
    """

    #: Human-readable generation tag ("gen1" / "gen2").
    generation: str = "abstract"

    def __init__(
        self,
        host: PhysicalHost,
        clock: SimClock,
        rng: np.random.Generator,
        sandbox_id: str,
        tsc_policy: TscPolicy = TscPolicy.NATIVE,
    ) -> None:
        self._host = host
        self._clock = clock
        self._rng = rng
        self.sandbox_id = sandbox_id
        self.tsc_policy = tsc_policy
        self.boot_wall_time = clock.now()
        self.syscalls = SyscallLayer(host, clock, rng)

    # ------------------------------------------------------------------
    # Instruction-level surface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def rdtsc(self) -> int:
        """Execute the unprivileged ``rdtsc`` instruction."""

    @abc.abstractmethod
    def cpuid_model(self) -> str:
        """Return the CPU model string visible through ``cpuid``."""

    def cpuid_tsc_frequency(self) -> float | None:
        """TSC frequency reported by ``cpuid`` leaf 0x15, if enumerated.

        Cloud Run hosts do not enumerate it (paper §4.2), so both sandbox
        generations return ``None``; attackers fall back to the frequency
        labeled in the model name.
        """
        return None

    # ------------------------------------------------------------------
    # Kernel/VM surface
    # ------------------------------------------------------------------
    def wall_clock(self) -> float:
        """Read the wall clock through a (noisy) system call."""
        return self.syscalls.clock_gettime()

    def sleep(self, duration: float) -> None:
        """Sleep for ``duration`` seconds of wall time (plus jitter)."""
        self.syscalls.nanosleep(duration)

    @abc.abstractmethod
    def kernel_tsc_khz(self) -> float:
        """Read the kernel's refined TSC frequency, in kHz.

        Requires root inside a real kernel; only the Gen 2 guest can do it.

        Raises
        ------
        PrivilegeError
            In environments where the guest cannot reach a real kernel.
        """

    @abc.abstractmethod
    def proc_uptime(self) -> float:
        """Read ``/proc/uptime`` as visible inside the sandbox.

        Both generations virtualize it, so it never exposes host uptime.
        """

    def proc_cpuinfo_model(self) -> str:
        """Model name from the emulated ``/proc/cpuinfo`` (concealed)."""
        return "unknown"

    # ------------------------------------------------------------------
    # Shared-hardware covert channel
    # ------------------------------------------------------------------
    def start_rng_pressure(self) -> None:
        """Begin hammering the host hardware RNG (RDRAND loop)."""
        self._host.rng_resource.start_pressure(self.sandbox_id)

    def stop_rng_pressure(self) -> None:
        """Stop hammering the host hardware RNG."""
        self._host.rng_resource.stop_pressure(self.sandbox_id)

    def observe_rng_contention(self) -> int:
        """Sample the current RNG contention level (must be pressuring)."""
        return self._host.rng_resource.observe(self.sandbox_id, self._rng)

    def start_bus_pressure(self) -> None:
        """Begin hammering the host memory bus (atomic-op loop)."""
        self._host.memory_bus.start_pressure(self.sandbox_id)

    def stop_bus_pressure(self) -> None:
        """Stop hammering the host memory bus."""
        self._host.memory_bus.stop_pressure(self.sandbox_id)

    def observe_bus_contention(self) -> int:
        """Sample memory-bus contention (must be pressuring).

        Noisier than the RNG channel: ordinary tenants exercise the bus
        constantly, so background contention is common.
        """
        return self._host.memory_bus.observe(self.sandbox_id, self._rng)

    # -- generic registry-driven channel surface -----------------------
    def start_channel_pressure(self, kind: str) -> None:
        """Begin pressuring one registered covert-channel kind.

        Kinds whose descriptor names a legacy per-kind method (``rng``,
        ``bus``) dispatch through it, so subclasses customizing those
        methods keep their behavior; registry-only kinds go straight to
        the host's shared resource.
        """
        descriptor = channel_kind(kind)
        if descriptor.sandbox_start is not None:
            getattr(self, descriptor.sandbox_start)()
        else:
            self._host.channel_resource(kind).start_pressure(self.sandbox_id)

    def stop_channel_pressure(self, kind: str) -> None:
        """Stop pressuring one registered covert-channel kind."""
        descriptor = channel_kind(kind)
        if descriptor.sandbox_stop is not None:
            getattr(self, descriptor.sandbox_stop)()
        else:
            self._host.channel_resource(kind).stop_pressure(self.sandbox_id)

    def observe_channel_contention(self, kind: str) -> int:
        """Sample one kind's contention level (must be pressuring it).

        The single scalar-observation entry point of the generic channel
        surface: per-kind draw semantics live entirely in the host's
        :class:`~repro.hardware.rng_resource.ContentionResource`, so every
        kind inherits the module-level draw-order contract unchanged.
        """
        descriptor = channel_kind(kind)
        if descriptor.sandbox_observe is not None:
            return getattr(self, descriptor.sandbox_observe)()
        return self._host.channel_resource(kind).observe(self.sandbox_id, self._rng)

    def channel_port(self, kind: str) -> ChannelPort | None:
        """Batched-observation port for one channel kind, or ``None``.

        Returns ``None`` when this sandbox's scalar observation semantics
        have been customized — a subclass overrides the kind's legacy
        observe method or the generic
        :meth:`observe_channel_contention` — in which case the vectorized
        CTest engine cannot prove stream identity and must fall back to
        the scalar per-round loop.
        """
        descriptor = channel_kind(kind)
        if (
            type(self).observe_channel_contention
            is not Sandbox.observe_channel_contention
        ):
            return None
        if descriptor.sandbox_observe is not None:
            observer = descriptor.sandbox_observe
            if getattr(type(self), observer) is not getattr(Sandbox, observer):
                return None
        return ChannelPort(
            self._host.channel_resource(kind), self.sandbox_id, self._rng
        )

    def rng_channel_port(self) -> ChannelPort | None:
        """Deprecated shim for ``channel_port("rng")`` (same guard)."""
        return self.channel_port("rng")

    def bus_channel_port(self) -> ChannelPort | None:
        """Deprecated shim for ``channel_port("bus")`` (same guard)."""
        return self.channel_port("bus")

    # ------------------------------------------------------------------
    # Request serving (victim-side latency surface)
    # ------------------------------------------------------------------

    #: Fractional response-time stretch per concurrent memory-bus locker.
    BUS_LOCK_SLOWDOWN = 0.9
    #: Upper bound of the uniform per-request scheduling jitter (fraction).
    SERVE_JITTER = 0.08

    def serve_request(self, processing_seconds: float) -> float:
        """Serve one inbound request; returns the response wall-time.

        Request handling is memory-bound, so response time stretches with
        the number of co-located tenants currently *locking* the memory
        bus (atomic-op loops): each locker adds :attr:`BUS_LOCK_SLOWDOWN`
        of the base processing time.  Ordinary scheduling noise appears
        as a uniform jitter bounded by :attr:`SERVE_JITTER` — well below
        one locker's slowdown, which is what lets the Target Victim
        Locator separate locked from unlocked with an *absolute* latency
        threshold instead of a differential one.

        The busy period is registered on the host like any request
        (:meth:`run_busy`), so co-located probes still see the activity.
        """
        lockers = self._host.memory_bus.pressurer_count
        latency = (
            processing_seconds
            * (1.0 + self.BUS_LOCK_SLOWDOWN * lockers)
            * (1.0 + self._rng.uniform(0.0, self.SERVE_JITTER))
        )
        self.run_busy(latency)
        return latency

    # ------------------------------------------------------------------
    # CPU execution and contention (victim-activity detection)
    # ------------------------------------------------------------------
    def run_busy(self, duration: float) -> None:
        """Execute CPU-bound work for ``duration`` seconds (non-blocking
        from the simulation's point of view: the busy period is registered
        on the host and observed as contention by co-located probes)."""
        self._host.cpu_activity.mark_busy(self.sandbox_id, self._clock.now(), duration)

    def observe_cpu_contention(self) -> int:
        """Count currently-executing co-located siblings (noisy).

        Physically: time a calibrated probe loop and infer contention from
        the slowdown.  The observer's own work is excluded.
        """
        return self._host.cpu_activity.observe(
            self.sandbox_id, self._clock.now(), self._rng
        )

    # ------------------------------------------------------------------
    # Helpers shared by concrete sandboxes
    # ------------------------------------------------------------------
    def _emulated_rdtsc(self) -> int:
        """Virtualized TSC used under the EMULATED mitigation policy.

        Starts at zero at sandbox boot and ticks at exactly the reported
        frequency; the trap adds syscall-grade latency, modeled by counting
        the read as a system call.
        """
        self.syscalls.call_count += 1
        elapsed = self._clock.now() - self.boot_wall_time
        return int(elapsed * self._host.cpu.reported_tsc_frequency_hz)
