"""Integration tests for §6's scheduling-based co-location defenses."""

import pytest

from repro import units
from repro.cloud.services import ServiceConfig
from repro.core.attack.strategies import optimized_launch
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.experiments.base import default_env

from tests.conftest import tiny_profile


def env_with_defense(defense, seed=33):
    return default_env(profile=tiny_profile(defense=defense), seed=seed)


def footprint(client, name, n):
    handles = client.connect(name, n)
    return {fp for _h, fp in fingerprint_gen1_instances(handles, p_boot=1.0)}


def coverage(env, strategy):
    outcome = strategy(env.attacker)
    orch = env.orchestrator
    attacker_hosts = {
        orch.true_host_of(h.instance_id) for h in outcome.handles if h.alive
    }
    victim = env.victim("account-2")
    service = victim.deploy(ServiceConfig(name="victim"))
    handles = victim.connect(service, 10)
    hosts = [orch.true_host_of(h.instance_id) for h in handles]
    return sum(1 for h in hosts if h in attacker_hosts) / len(hosts)


def optimized(client):
    return optimized_launch(
        client, n_services=2, launches=4, instances_per_service=16,
        interval_s=10 * units.MINUTE,
    )


class TestRandomizedBase:
    def test_footprints_no_longer_stable(self):
        """Observation 3 breaks: cold launches land on different hosts."""
        env = env_with_defense("randomized_base")
        client = env.attacker
        name = client.deploy(ServiceConfig(name="rb"))
        first = footprint(client, name, 15)
        client.disconnect(name)
        client.wait(45 * units.MINUTE)
        second = footprint(client, name, 15)
        # Random 5-host samples from a 20-host pool rarely coincide.
        assert first != second

    def test_profile_validation(self):
        from repro.errors import CloudError

        with pytest.raises(CloudError):
            tiny_profile(defense="prayer")


class TestTenantIsolation:
    def test_no_cross_account_co_location_ever(self):
        env = env_with_defense("tenant_isolation")
        cov = coverage(env, optimized)
        assert cov == 0.0

    def test_same_account_still_shares_hosts(self):
        env = env_with_defense("tenant_isolation")
        client = env.attacker
        a = client.deploy(ServiceConfig(name="ta"))
        b = client.deploy(ServiceConfig(name="tb"))
        fa = footprint(client, a, 10)
        fb = footprint(client, b, 10)
        assert fa & fb

    def test_no_helper_recruitment(self):
        """The load balancer cannot spill a tenant onto shared hosts."""
        env = env_with_defense("tenant_isolation")
        outcome = optimized(env.attacker)
        base = set(env.datacenter.shard_hosts(0))
        hosts = {
            env.orchestrator.true_host_of(h.instance_id) for h in outcome.handles
        }
        assert hosts <= base

    def test_confines_but_costs_capacity(self):
        """The defense caps each tenant to its partition: the footprint an
        attacker (or any tenant) can ever reach shrinks to the shard."""
        undefended = env_with_defense("none")
        defended = env_with_defense("tenant_isolation")
        free = optimized(undefended.attacker)
        caged = optimized(defended.attacker)
        assert len(caged.apparent_hosts) < len(free.apparent_hosts)


class TestDefenseComparison:
    def test_tenant_isolation_beats_undefended(self):
        assert coverage(env_with_defense("tenant_isolation"), optimized) == 0.0
        assert coverage(env_with_defense("none"), optimized) > 0.3
