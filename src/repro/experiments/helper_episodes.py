"""Figure 10: helper-host footprints across services (Observation 6).

Six episodes; each episode primes a *different* service with six launches at
a 10-minute interval and measures its helper-host footprint (the footprint
after the sixth launch minus the footprint after the first).  The cumulative
union of helper footprints grows with every episode — different services
recruit different, but overlapping, helper sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.cloud.services import ServiceConfig
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.experiments.base import default_env


@dataclass(frozen=True)
class EpisodesConfig:
    """Configuration for the Fig. 10 experiment."""

    region: str = "us-east1"
    episodes: int = 6
    launches_per_episode: int = 6
    instances: int = 800
    interval: float = 10 * units.MINUTE
    cooldown: float = 45 * units.MINUTE
    p_boot: float = 1.0
    seed: int = 530


@dataclass
class EpisodesResult:
    """Per-episode helper footprints and their cumulative union."""

    per_episode_helpers: list[int] = field(default_factory=list)
    cumulative_helpers: list[int] = field(default_factory=list)

    @property
    def cumulative_growth_per_episode(self) -> list[int]:
        """How much each episode added to the cumulative helper set."""
        growth = [self.cumulative_helpers[0]]
        for i in range(1, len(self.cumulative_helpers)):
            growth.append(self.cumulative_helpers[i] - self.cumulative_helpers[i - 1])
        return growth

    @property
    def overlapping(self) -> bool:
        """True when helper sets overlap across services (Observation 6):
        every episode after the first adds fewer new helpers than it has."""
        return all(
            added < count
            for added, count in zip(
                self.cumulative_growth_per_episode[1:], self.per_episode_helpers[1:]
            )
        )


def run(config: EpisodesConfig = EpisodesConfig()) -> EpisodesResult:
    """Run the Fig. 10 helper-episode experiment."""
    env = default_env(config.region, seed=config.seed)
    client = env.attacker
    result = EpisodesResult()
    cumulative: set = set()

    for episode in range(config.episodes):
        name = client.deploy(
            ServiceConfig(
                name=f"episode-{episode}", max_instances=max(100, config.instances)
            )
        )
        footprints: list[set] = []
        for launch_idx in range(config.launches_per_episode):
            start = client.now()
            handles = client.connect(name, config.instances)
            tagged = fingerprint_gen1_instances(handles, p_boot=config.p_boot)
            footprints.append({fp for _, fp in tagged})
            client.disconnect(name)
            if launch_idx != config.launches_per_episode - 1:
                elapsed = client.now() - start
                client.wait(max(0.0, config.interval - elapsed))

        helpers = footprints[-1] - footprints[0]
        cumulative |= helpers
        result.per_episode_helpers.append(len(helpers))
        result.cumulative_helpers.append(len(cumulative))
        client.wait(config.cooldown)
    return result
