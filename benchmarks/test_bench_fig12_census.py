"""Figure 12: cumulative unique apparent hosts (datacenter census).

Paper: 96 optimized launches from 24 services across 3 accounts discover
474 / 1702 / 199 apparent hosts in us-east1 / us-central1 / us-west1, with
growth flattening out; the 6-service attack occupies 59% / 53% / 82% of
those hosts at once (904 hosts in us-central1).
"""

from repro.experiments import census as cen
from repro.experiments.report import ComparisonRow, format_comparison

from benchmarks.conftest import run_once

CONFIG = cen.CensusConfig()


def test_fig12_cluster_census(benchmark, emit, runner):
    summary = run_once(benchmark, lambda: cen.run(CONFIG, runner=runner))

    rows = []
    for region in summary.regions:
        rows.append(
            ComparisonRow(
                f"{region.region}: apparent hosts",
                str(cen.PAPER_CENSUS[region.region]),
                str(region.total_hosts),
            )
        )
        rows.append(
            ComparisonRow(
                f"{region.region}: attacker share at once",
                f"{100 * cen.PAPER_ATTACKER_SHARE[region.region]:.0f}%",
                f"{100 * region.attacker_share:.0f}%",
            )
        )
    emit(format_comparison("Figure 12 — datacenter census", rows))

    east = summary.by_region("us-east1")
    central = summary.by_region("us-central1")
    west = summary.by_region("us-west1")

    # Relative sizes reproduce: central >> east > west.
    assert central.total_hosts > 3 * east.total_hosts
    assert east.total_hosts > 1.5 * west.total_hosts

    # Absolute counts within ~25% of the paper's census.
    for region in summary.regions:
        paper = cen.PAPER_CENSUS[region.region]
        assert abs(region.total_hosts - paper) / paper < 0.25, region.region

    # Growth flattens as the fleet saturates.
    assert all(region.growth_flattens for region in summary.regions)

    # Attacker occupies roughly half or more of each census at once;
    # us-central1 peaks near the paper's 904 hosts.
    for region in summary.regions:
        assert 0.4 < region.attacker_share <= 1.1, region.region
    assert abs(central.attacker_hosts_at_once - cen.PAPER_MAX_HOSTS_AT_ONCE) < 200
