"""Platform-side detection of covert-channel campaigns (§6).

The paper notes providers can "detect and stop ongoing side-channel
attacks" (CloudRadar-style defenses).  The co-location *verification* step
has a loud signature the provider can see: one account's instances hammer
the hardware RNG simultaneously across many hosts within a short window.
Ordinary tenants touch the RNG rarely, briefly, and on few hosts.

:class:`AbuseMonitor` samples per-host RNG pressure as simulated time
advances, attributes it to accounts, and flags any account whose pressure
footprint spans too many distinct hosts inside a sliding window.  With
``enforce=True`` a flagged account's services are terminated on the spot —
which stops the scalable verifier mid-campaign.

This module is a *defense* evaluation tool: the benchmark shows the
paper's methodology is detectable, not how to hide it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.orchestrator import Orchestrator


@dataclass
class PressureEvent:
    """One sampled (account, host) RNG-pressure observation."""

    at: float
    account_id: str
    host_id: str


@dataclass
class AbuseVerdict:
    """Why an account was flagged."""

    account_id: str
    at: float
    hosts_in_window: int


class AbuseMonitor:
    """Flags accounts running cross-host RNG-contention campaigns.

    Parameters
    ----------
    orchestrator:
        The platform to observe (hooks onto its clock).
    sample_period_s:
        Minimum spacing between samples.
    window_s:
        Sliding window over which an account's pressured-host set is
        accumulated.
    host_threshold:
        Flag an account when its window footprint reaches this many
        distinct hosts.  Benign RNG users (crypto services) touch only
        their own few hosts; the verifier's campaign touches dozens.
    enforce:
        Terminate a flagged account's services immediately.
    """

    def __init__(
        self,
        orchestrator: Orchestrator,
        sample_period_s: float = 0.5,
        window_s: float = 60.0,
        host_threshold: int = 20,
        enforce: bool = False,
    ) -> None:
        if sample_period_s <= 0 or window_s <= 0:
            raise ValueError("sample period and window must be positive")
        if host_threshold < 2:
            raise ValueError(f"host_threshold must be >= 2, got {host_threshold}")
        self._orchestrator = orchestrator
        self.sample_period_s = sample_period_s
        self.window_s = window_s
        self.host_threshold = host_threshold
        self.enforce = enforce
        self.events: list[PressureEvent] = []
        self.verdicts: list[AbuseVerdict] = []
        self._last_sample = float("-inf")
        self._attached = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Start observing (idempotent)."""
        if not self._attached:
            self._orchestrator.clock.add_tick_hook(self._on_tick)
            self._attached = True

    def detach(self) -> None:
        """Stop observing."""
        if self._attached:
            self._orchestrator.clock.remove_tick_hook(self._on_tick)
            self._attached = False

    @property
    def flagged_accounts(self) -> set[str]:
        """Accounts flagged so far."""
        return {verdict.account_id for verdict in self.verdicts}

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _on_tick(self, now: float) -> None:
        if now - self._last_sample < self.sample_period_s:
            return
        self._last_sample = now
        self._sample(now)

    def _sample(self, now: float) -> None:
        for host in self._orchestrator.datacenter.hosts:
            pressurers = host.rng_resource.current_pressurers()
            if not pressurers:
                continue
            for instance_id in pressurers:
                instance = self._orchestrator.instances.get(instance_id)
                if instance is None:
                    continue
                self.events.append(
                    PressureEvent(
                        at=now,
                        account_id=instance.service.account_id,
                        host_id=host.host_id,
                    )
                )
        self._evaluate(now)

    def _evaluate(self, now: float) -> None:
        cutoff = now - self.window_s
        self.events = [e for e in self.events if e.at >= cutoff]
        footprint: dict[str, set[str]] = {}
        for event in self.events:
            footprint.setdefault(event.account_id, set()).add(event.host_id)
        for account_id, hosts in footprint.items():
            if len(hosts) < self.host_threshold:
                continue
            if account_id in self.flagged_accounts:
                continue
            self.verdicts.append(
                AbuseVerdict(
                    account_id=account_id, at=now, hosts_in_window=len(hosts)
                )
            )
            if self.enforce:
                self._terminate_account(account_id)

    def _terminate_account(self, account_id: str) -> None:
        for service in list(self._orchestrator.services.values()):
            if service.account_id == account_id:
                self._orchestrator.kill_service(service)
