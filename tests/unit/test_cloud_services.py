"""Unit tests for services and container sizes (Table 1)."""

import pytest

from repro.cloud.services import (
    CONTAINER_SIZES,
    LARGE,
    MEDIUM,
    PICO,
    SMALL,
    Service,
    ServiceConfig,
)
from repro.errors import CloudError


class TestContainerSizes:
    def test_table1_pico(self):
        assert PICO.vcpus == 0.25
        assert PICO.memory_gb == pytest.approx(0.256)

    def test_table1_small_is_default_shape(self):
        assert SMALL.vcpus == 1.0
        assert SMALL.memory_gb == pytest.approx(0.512)

    def test_table1_medium(self):
        assert MEDIUM.vcpus == 2.0
        assert MEDIUM.memory_gb == pytest.approx(1.0)

    def test_table1_large(self):
        assert LARGE.vcpus == 4.0
        assert LARGE.memory_gb == pytest.approx(4.0)

    def test_lookup_by_name(self):
        assert CONTAINER_SIZES["Small"] is SMALL
        assert set(CONTAINER_SIZES) == {"Pico", "Small", "Medium", "Large"}

    def test_slots_ordering(self):
        """Bigger containers consume more host capacity."""
        assert PICO.slots < SMALL.slots < MEDIUM.slots < LARGE.slots

    def test_small_is_exactly_one_slot(self):
        assert SMALL.slots == 1.0

    def test_large_displaces_four_smalls(self):
        assert LARGE.slots == pytest.approx(4.0)


class TestServiceConfig:
    def test_defaults(self):
        config = ServiceConfig(name="svc")
        assert config.generation == "gen1"
        assert config.max_instances == 100
        assert config.concurrency == 1
        assert config.size is SMALL

    def test_invalid_generation_rejected(self):
        with pytest.raises(CloudError):
            ServiceConfig(name="svc", generation="gen3")

    @pytest.mark.parametrize("bad", [0, -5, 1001, 5000])
    def test_max_instances_bounds(self, bad):
        with pytest.raises(CloudError):
            ServiceConfig(name="svc", max_instances=bad)

    def test_max_instances_cloud_run_cap(self):
        """Cloud Run allows up to 1000 instances per service."""
        ServiceConfig(name="svc", max_instances=1000)

    def test_concurrency_must_be_positive(self):
        with pytest.raises(CloudError):
            ServiceConfig(name="svc", concurrency=0)


class TestService:
    def test_qualified_name(self):
        service = Service(
            config=ServiceConfig(name="login"), account_id="acct", image_id="img-1"
        )
        assert service.qualified_name == "acct/login"

    def test_fresh_service_has_no_helpers_or_demand(self):
        service = Service(
            config=ServiceConfig(name="x"), account_id="a", image_id="i"
        )
        assert service.helper_host_ids == []
        assert service.demand_events == []
