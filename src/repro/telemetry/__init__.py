"""Unified telemetry: deterministic sim-time tracing plus typed metrics.

The subsystem has three pieces:

* :class:`Telemetry` — records a span tree (simulated-time ``sim`` spans,
  runner-time ``wall`` spans, zero-duration events) and a
  :class:`MetricSet` of counters/gauges/histograms.
* the ambient context — :func:`current_telemetry` /
  :func:`telemetry_context` thread one handle through the orchestrator,
  covert channel, verifier, and runner without parameter plumbing; the
  default is :data:`NULL_TELEMETRY`, whose operations are allocation-free
  no-ops, so instrumented code never branches on enablement.
* exports — :func:`write_jsonl` (deterministic, golden-diffable trace),
  :func:`render_tree` (human tree), :func:`format_metrics` /
  :func:`metrics_snapshot` (metric dumps).

Enable it from the CLI with ``--trace PATH`` / ``--metrics``, or in code::

    from repro.telemetry import Telemetry, telemetry_context, write_jsonl

    tm = Telemetry()
    with telemetry_context(tm):
        run_experiment("exp1")
    write_jsonl(tm, "trace.jsonl")
"""

from repro.telemetry.export import (
    format_metrics,
    metrics_snapshot,
    render_tree,
    span_lines,
    write_jsonl,
)
from repro.telemetry.metrics import HistogramSummary, MetricSet
from repro.telemetry.tracer import (
    NULL_TELEMETRY,
    NullTelemetry,
    Span,
    Telemetry,
    current_telemetry,
    telemetry_context,
)

__all__ = [
    "NULL_TELEMETRY",
    "HistogramSummary",
    "MetricSet",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "current_telemetry",
    "format_metrics",
    "metrics_snapshot",
    "render_tree",
    "span_lines",
    "telemetry_context",
    "write_jsonl",
]
