"""Unit tests for co-location campaigns."""

import pytest

from repro import units
from repro.core.attack.campaign import ColocationCampaign
from repro.core.attack.strategies import naive_launch, optimized_launch


def small_optimized(client):
    return optimized_launch(
        client,
        n_services=2,
        launches=3,
        instances_per_service=12,
        interval_s=10 * units.MINUTE,
    )


def small_naive(client):
    return naive_launch(client, n_services=2, instances_per_service=12)


class TestColocationCampaign:
    def test_requires_same_region(self, tiny_env_factory):
        env_a = tiny_env_factory(seed=1)
        env_b = tiny_env_factory(seed=2, name="other-region")
        with pytest.raises(ValueError):
            ColocationCampaign(
                attacker=env_a.attacker,
                victim=env_b.victim("account-2"),
                strategy=small_naive,
            )

    def test_coverage_in_unit_range(self, tiny_env):
        campaign = ColocationCampaign(
            attacker=tiny_env.attacker,
            victim=tiny_env.victim("account-2"),
            strategy=small_optimized,
        )
        result = campaign.run(n_victim_instances=10)
        assert 0.0 <= result.coverage <= 1.0

    def test_coverage_matches_oracle(self, tiny_env):
        """The covert-channel-verified coverage must agree with the
        simulator's placement map."""
        campaign = ColocationCampaign(
            attacker=tiny_env.attacker,
            victim=tiny_env.victim("account-2"),
            strategy=small_optimized,
        )
        result = campaign.run(n_victim_instances=10, victim_service_name="vic")
        orch = tiny_env.orchestrator
        attacker_hosts = set()
        for name in tiny_env.attacker.service_names():
            if name.startswith("primed"):
                for inst in orch.alive_instances(tiny_env.attacker._service(name)):
                    attacker_hosts.add(inst.host_id)
        victim_service = tiny_env.victim("account-2")._service("vic")
        victim_instances = orch.alive_instances(victim_service)
        oracle = sum(
            1 for inst in victim_instances if inst.host_id in attacker_hosts
        ) / len(victim_instances)
        assert result.coverage == pytest.approx(oracle)

    def test_same_account_covers_itself(self, tiny_env):
        """Sanity: attacking your own account's base hosts gives full
        coverage (shared base hosts)."""
        campaign = ColocationCampaign(
            attacker=tiny_env.attacker,
            victim=tiny_env.attacker,
            strategy=small_naive,
        )
        result = campaign.run(n_victim_instances=8)
        assert result.coverage == 1.0

    def test_result_fields_consistent(self, tiny_env):
        campaign = ColocationCampaign(
            attacker=tiny_env.attacker,
            victim=tiny_env.victim("account-2"),
            strategy=small_optimized,
        )
        result = campaign.run(n_victim_instances=10)
        assert result.shared_hosts <= min(result.attacker_hosts, result.victim_hosts)
        assert result.attacker_cost_usd > 0
        assert result.verification.n_tests > 0

    def test_gen2_campaign(self, tiny_env):
        campaign = ColocationCampaign(
            attacker=tiny_env.attacker,
            victim=tiny_env.victim("account-2"),
            strategy=lambda c: optimized_launch(
                c,
                n_services=2,
                launches=2,
                instances_per_service=10,
                generation="gen2",
            ),
            generation="gen2",
        )
        result = campaign.run(n_victim_instances=8)
        assert 0.0 <= result.coverage <= 1.0
