#!/usr/bin/env python3
"""Demonstrating the §6 mitigation: TSC emulation/virtualization.

When the platform traps ``rdtsc`` and masks both the counter value and the
host's true frequency, the Gen 1 boot-time fingerprint collapses to "when
did my own sandbox start" and the Gen 2 refined-frequency fingerprint
collapses to the nominal model frequency — neither identifies hosts.

The mitigation's cost is timer-access latency: every ``rdtsc`` becomes a
trap, which this demo quantifies via the sandbox's syscall counter.

Run:  python examples/mitigation_demo.py
"""

from repro.cloud.services import ServiceConfig
from repro.core.fingerprint import (
    fingerprint_gen1_instances,
    fingerprint_gen2_instances,
)
from repro.experiments.base import default_env
from repro.sandbox.base import TscPolicy


def fingerprint_diversity(tsc_policy: TscPolicy) -> tuple[int, int, int]:
    env = default_env("us-east1", seed=51, tsc_policy=tsc_policy)
    client = env.attacker
    gen1 = client.deploy(ServiceConfig(name="m1", max_instances=400))
    handles1 = client.connect(gen1, 300)
    fps1 = {fp for _h, fp in fingerprint_gen1_instances(handles1, p_boot=1.0)}
    gen2 = client.deploy(ServiceConfig(name="m2", generation="gen2", max_instances=400))
    handles2 = client.connect(gen2, 300)
    fps2 = {fp for _h, fp in fingerprint_gen2_instances(handles2)}
    true_hosts = {
        env.orchestrator.true_host_of(h.instance_id) for h in handles1 + handles2
    }
    return len(fps1), len(fps2), len(true_hosts)


def timer_overhead(tsc_policy: TscPolicy) -> int:
    env = default_env("us-east1", seed=52, tsc_policy=tsc_policy)
    client = env.attacker
    service = client.deploy(ServiceConfig(name="t", max_instances=100))
    handle = client.connect(service, 1)[0]

    def hammer(sandbox):
        before = sandbox.syscalls.call_count
        for _ in range(1000):
            sandbox.rdtsc()
        return sandbox.syscalls.call_count - before

    return handle.run(hammer)


def main() -> None:
    for policy in (TscPolicy.NATIVE, TscPolicy.EMULATED):
        gen1, gen2, hosts = fingerprint_diversity(policy)
        traps = timer_overhead(policy)
        print(f"--- TSC policy: {policy.value} ---")
        print(f"  true hosts touched:        {hosts}")
        print(f"  distinct Gen 1 fingerprints: {gen1}")
        print(f"  distinct Gen 2 fingerprints: {gen2}")
        print(f"  kernel traps per 1000 rdtsc: {traps}")
        print()
    print(
        "Under emulation the fingerprint counts collapse (no host signal),\n"
        "but every timer read costs a trap — the overhead §6 warns about\n"
        "for timestamp-hungry workloads (databases, tracing, media)."
    )


if __name__ == "__main__":
    main()
