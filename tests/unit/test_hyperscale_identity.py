"""Twin-world identity suite for the hyperscale batched paths.

PR 8 vectorized three more layers: the orchestrator launch path (vector
sandbox-seed draws plus batched count commits), the helper-host recruiter
(gathered id resolution), and the census aggregation
(:class:`~repro.analysis.aggregation.FootprintAccumulator`).  Each test
here builds two byte-identical worlds from one seed, runs the scalar
reference in one and the batched engine in the other, and pins placements,
sandbox RNG end states, the orchestrator RNG end state, service-count
columns, and load columns exactly equal — the same contract the golden
traces enforce end-to-end, exercised over a seed x shape matrix that
includes mid-campaign instance deaths, ``InstanceGoneError`` handling, and
fault-injected launch failures (where the batched path must fall back to
the scalar loop on both sides).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.aggregation import FootprintAccumulator, census_reduce_scalar
from repro.cloud.loadbalancer import HelperHostRecruiter
from repro.cloud.services import Service, ServiceConfig
from repro.errors import InstanceGoneError
from repro.faults import FaultPlan, FaultSpec
from repro.fleet import FleetStore


def forbid_scalar_launch(orchestrator) -> None:
    """Make the orchestrator fail loudly if the batched launch path
    falls back to the scalar loop (only the scalar loop calls
    ``_attempt_launch``)."""

    def fail(*_args, **_kwargs):  # pragma: no cover - only on regression
        pytest.fail("batched launch path fell back to the scalar loop")

    orchestrator._attempt_launch = fail


def orch_rng_state(env) -> str:
    return str(env.orchestrator._rng.bit_generator.state)


def sandbox_rng_state(handle) -> str:
    return handle.run(lambda sandbox: str(sandbox._rng.bit_generator.state))


def run_campaign(
    env, *, n, launches, kill_mid=False, idle_deaths=False, max_instances=100
):
    """One deploy/connect/disconnect campaign; returns its observable state.

    ``idle_deaths`` waits into the idle-reap window between launches so
    later launches top up a partially dead fleet; ``kill_mid`` terminates
    one instance directly and asserts the handle raises
    ``InstanceGoneError`` afterwards.
    """
    client = env.clients["account-1"]
    orch = env.orchestrator
    profile = env.datacenter.profile
    name = client.deploy(ServiceConfig(name="svc", max_instances=max_instances))
    qualified = client._service(name).qualified_name

    hosts_per_launch = []
    gone_raised = 0
    last_handles = []
    for launch_round in range(launches):
        handles = client.connect(name, n)
        hosts_per_launch.append(
            [orch.true_host_of(h.instance_id) for h in handles]
        )
        if kill_mid and launch_round == 0:
            victim = handles[0]
            victim._instance.terminate(orch.clock.now())
            with pytest.raises(InstanceGoneError):
                victim.run(lambda sandbox: None)
            gone_raised += 1
        last_handles = handles
        if launch_round != launches - 1:
            client.disconnect(name)
            if idle_deaths:
                # Mid-window: some idle instances reap, some survive, so
                # the next launch mixes reuse with fresh creation.
                client.wait((profile.idle_grace + profile.idle_deadline) / 2)
            else:
                client.wait(profile.idle_grace / 2)

    return {
        "hosts": hosts_per_launch,
        "gone_raised": gone_raised,
        "sandbox_states": {
            h.instance_id: sandbox_rng_state(h)
            for h in last_handles
            if h.alive
        },
        "orch_rng": orch_rng_state(env),
        "service_counts": orch.fleet.service_counts(qualified).tolist(),
        "load": orch.fleet.load_slots.tolist(),
        "clock": orch.clock.now(),
    }


def run_twin_launch_worlds(
    tiny_env_factory, seed, *, fault_plan_factory=None, **campaign_kwargs
):
    """Scalar-reference launch world vs batched launch world."""
    worlds = {}
    for label, scalar in (("scalar", True), ("batched", False)):
        env = tiny_env_factory(
            seed=seed,
            fault_plan=None if fault_plan_factory is None else fault_plan_factory(),
        )
        env.orchestrator.force_scalar_launch = scalar
        if not scalar and fault_plan_factory is None:
            forbid_scalar_launch(env.orchestrator)
        worlds[label] = run_campaign(env, **campaign_kwargs)
    assert worlds["scalar"] == worlds["batched"]
    return worlds["scalar"]


# 4 seeds x 4 shapes = 16 identity cases (the PR's pinned matrix): a
# single clean wave, a reconnect campaign with mid-campaign idle deaths, a
# campaign with a killed instance (InstanceGoneError on both paths), and a
# fault-injected campaign where launches fail and retry (the batched path
# must decline and run the scalar loop on both sides).
LAUNCH_SHAPES = [
    pytest.param(dict(n=12, launches=1), None, id="single-wave"),
    pytest.param(
        dict(n=10, launches=3, idle_deaths=True), None, id="idle-deaths"
    ),
    pytest.param(
        dict(n=8, launches=2, kill_mid=True), None, id="killed-instance"
    ),
    pytest.param(
        dict(n=10, launches=2),
        lambda seed: FaultPlan(FaultSpec(launch_error_rate=0.2, seed=seed)),
        id="faulty-launches",
    ),
]


@pytest.mark.parametrize("seed", [11, 12, 13, 14])
@pytest.mark.parametrize("shape,plan", LAUNCH_SHAPES)
def test_launch_identity_matrix(tiny_env_factory, seed, shape, plan):
    run_twin_launch_worlds(
        tiny_env_factory,
        seed,
        fault_plan_factory=None if plan is None else (lambda: plan(seed)),
        **shape,
    )


def test_batched_launch_engages_without_fault_plan(tiny_env_factory):
    """Guard against silently losing the fast path: a clean environment
    must never enter the scalar launch loop."""
    env = tiny_env_factory(seed=21)
    forbid_scalar_launch(env.orchestrator)
    client = env.clients["account-1"]
    name = client.deploy(ServiceConfig(name="svc"))
    assert len(client.connect(name, 15)) == 15


def test_fault_plan_forces_scalar_launch(tiny_env_factory):
    """With a fault plan installed, identity is not provable (a mid-batch
    LaunchError truncates the seed-draw sequence), so the orchestrator
    must take the scalar loop."""
    env = tiny_env_factory(
        seed=22,
        fault_plan=FaultPlan(FaultSpec(launch_error_rate=0.3, seed=22)),
    )
    calls = []
    original = env.orchestrator._attempt_launch
    env.orchestrator._attempt_launch = lambda iid: (
        calls.append(iid), original(iid)
    )[1]
    client = env.clients["account-1"]
    name = client.deploy(ServiceConfig(name="svc"))
    client.connect(name, 6)
    assert len(calls) == 6


class TestRecruiterIdentity:
    """The recruiter's gathered id resolve vs the historical per-pick loop."""

    @staticmethod
    def build(n_hosts, helper_cap=64):
        store = FleetStore([f"h{i:05d}" for i in range(n_hosts)])
        service = Service(
            config=ServiceConfig(name="svc"),
            account_id="account-1",
            image_id="image-0",
        )
        return store, service

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize(
        "n_hosts,new_count,fraction",
        [(40, 8, 0.25), (200, 64, 0.5), (500, 11, 0.1), (64, 64, 1.0)],
    )
    def test_matches_scalar_reference(
        self, tiny_env_factory, seed, n_hosts, new_count, fraction
    ):
        profile = tiny_env_factory(seed=seed).datacenter.profile
        profile = type(profile)(
            **{
                **{f: getattr(profile, f) for f in profile.__dataclass_fields__},
                "name": "recruit-twin",
                "helper_recruit_fraction": fraction,
                "helper_pool_cap": n_hosts,
            }
        )
        candidates = np.arange(n_hosts, dtype=np.int64)
        np.random.default_rng(seed).shuffle(candidates)

        store, service = self.build(n_hosts)
        rng = np.random.default_rng(seed)
        picked = HelperHostRecruiter(profile, rng).recruit(
            service, new_count, candidates, store
        )

        # Scalar reference: the pre-PR-8 per-pick host_id loop.
        store_ref, service_ref = self.build(n_hosts)
        rng_ref = np.random.default_rng(seed)
        import math

        want = math.ceil(new_count * profile.helper_recruit_fraction)
        count = min(want, profile.helper_pool_cap, candidates.size)
        picked_pos = rng_ref.choice(candidates.size, size=count, replace=False)
        reference = [
            store_ref.host_id(int(candidates[pos])) for pos in picked_pos
        ]

        assert picked == reference
        assert service.helper_host_ids == reference
        assert str(rng.bit_generator.state) == str(rng_ref.bit_generator.state)


class TestCensusAggregationIdentity:
    """FootprintAccumulator vs the historical per-launch set reduction."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize(
        "launches,per_launch,universe",
        [(1, 50, 20), (8, 120, 40), (20, 30, 600), (5, 0, 10)],
    )
    def test_matches_set_reference(self, seed, launches, per_launch, universe):
        rng = np.random.default_rng(seed)
        stream = [
            [
                ("cpu-model", int(bucket))
                for bucket in rng.integers(universe, size=per_launch)
            ]
            for _ in range(launches)
        ]
        ref_per_launch, ref_cumulative = census_reduce_scalar(stream)

        acc = FootprintAccumulator()
        got = [acc.add_launch(launch) for launch in stream]
        assert [g[0] for g in got] == ref_per_launch
        assert [g[1] for g in got] == ref_cumulative
        assert acc.unique_count == (ref_cumulative[-1] if ref_cumulative else 0)

    def test_hashable_fingerprints_not_required_to_be_ints(self):
        acc = FootprintAccumulator()
        per, cum = acc.add_launch(["a", "b", "a", ("c", 1.5)])
        assert (per, cum) == (3, 3)
        per, cum = acc.add_launch(["b", "d"])
        assert (per, cum) == (2, 4)
        assert acc.add_launch([]) == (0, 4)
