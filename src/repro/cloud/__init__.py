"""A simulated Cloud Run-style FaaS platform.

This package is the *substrate* the paper's attack runs against: a full
container-orchestration platform with accounts, services, autoscaling
container instances, a placement policy, idle termination, and billing.

The placement policy is synthesized from the paper's black-box observations
(Observations 1-6, §5.1): per-account *base hosts*, near-uniform spreading,
idle termination within ~12 minutes, and a load balancer that recruits
*helper hosts* for services that sustain high demand inside a 30-minute
window.  Attacker- and victim-side code interacts with the platform only
through :class:`~repro.cloud.api.FaaSClient`, preserving the paper's threat
model.
"""

from repro.cloud.abuse import AbuseMonitor
from repro.cloud.accounts import Account
from repro.cloud.api import FaaSClient, InstanceHandle
from repro.cloud.autoscaler import Autoscaler, AutoscaleTrace
from repro.cloud.billing import BillingMeter, PricingRates
from repro.cloud.datacenter import DataCenter
from repro.cloud.instance import ContainerInstance, InstanceState
from repro.cloud.orchestrator import Orchestrator
from repro.cloud.platform import (
    PLATFORM_PROFILES,
    PlatformProfile,
    current_platform,
    platform_context,
    platform_profile,
)
from repro.cloud.services import ContainerSize, Service, ServiceConfig
from repro.cloud.topology import REGION_PROFILES, RegionProfile, region_profile
from repro.cloud.traffic import (
    BackgroundDriver,
    TenantPopulation,
    TrafficConfig,
    TrafficStats,
)
from repro.cloud.workloads import (
    BurstLoad,
    ConstantLoad,
    DiurnalLoad,
    PoissonLoad,
    RequestPattern,
)

__all__ = [
    "AbuseMonitor",
    "Account",
    "FaaSClient",
    "InstanceHandle",
    "Autoscaler",
    "AutoscaleTrace",
    "BurstLoad",
    "ConstantLoad",
    "DiurnalLoad",
    "PoissonLoad",
    "RequestPattern",
    "BillingMeter",
    "PricingRates",
    "DataCenter",
    "ContainerInstance",
    "InstanceState",
    "Orchestrator",
    "ContainerSize",
    "Service",
    "ServiceConfig",
    "REGION_PROFILES",
    "RegionProfile",
    "region_profile",
    "PLATFORM_PROFILES",
    "PlatformProfile",
    "current_platform",
    "platform_context",
    "platform_profile",
    "BackgroundDriver",
    "TenantPopulation",
    "TrafficConfig",
    "TrafficStats",
]
