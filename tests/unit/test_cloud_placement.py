"""Unit tests for the placement policy (columnar fleet-store API)."""

import numpy as np
import pytest

from repro.cloud.placement import PlacementPolicy, PlacementRequest
from repro.errors import NoCapacityError
from repro.fleet import FleetStore


def make_policy(seed=0):
    return PlacementPolicy(np.random.default_rng(seed))


def make_store(host_ids, capacity=160.0, load=None):
    store = FleetStore(host_ids, capacity_slots=capacity)
    if load:
        for host_id, slots in load.items():
            store.load_slots[store.index_of(host_id)] = slots
    return store


def simple_request(store, count, hosts=None, slots=1.0, **kwargs):
    allowed = store.indices_of(hosts if hosts is not None else store.ids)
    return PlacementRequest(
        count=count, slots_per_instance=slots, allowed=allowed, **kwargs
    )


def place_ids(policy, store, request):
    """Place and translate chosen indices back to host ids."""
    return [store.host_id(int(i)) for i in policy.place(request, store)]


class TestPlacement:
    def test_spreads_near_uniformly(self):
        """Observation 1: instances spread near-uniformly over hosts."""
        store = make_store([f"h{i}" for i in range(10)], capacity=1000.0)
        placed = place_ids(make_policy(), store, simple_request(store, 105))
        counts = {h: placed.count(h) for h in store.ids}
        assert set(counts.values()) <= {10, 11}

    def test_exact_division_is_uniform(self):
        store = make_store(["a", "b", "c"], capacity=100.0)
        placed = place_ids(make_policy(), store, simple_request(store, 9))
        assert all(placed.count(h) == 3 for h in store.ids)

    def test_respects_capacity(self):
        store = make_store(["full", "free"], capacity=10.0, load={"full": 9.5})
        placed = place_ids(make_policy(), store, simple_request(store, 5))
        assert placed.count("full") == 0
        assert placed.count("free") == 5

    def test_updates_load_in_place(self):
        store = make_store(["a"], capacity=100.0)
        make_policy().place(simple_request(store, 4), store)
        assert store.load_slots[store.index_of("a")] == 4.0

    def test_no_capacity_raises(self):
        store = make_store(["a"], capacity=2.0)
        with pytest.raises(NoCapacityError):
            make_policy().place(simple_request(store, 3), store)

    def test_empty_allowed_set_raises(self):
        store = make_store(["a"])
        with pytest.raises(NoCapacityError):
            make_policy().place(simple_request(store, 1, hosts=[]), store)

    def test_prefers_hosts_with_fewer_service_instances(self):
        store = make_store(["crowded", "empty"], capacity=100.0)
        counts = store.service_counts("svc")
        counts[store.index_of("crowded")] = 5
        request = simple_request(store, 1, service_counts=counts)
        assert place_ids(make_policy(), store, request) == ["empty"]

    def test_ignores_other_services_load(self):
        """Spreading keys on the service's own counts, not total host load:
        a host crowded by *other* tenants is still a fair target."""
        store = make_store(["busy", "quiet"], capacity=100.0, load={"busy": 50.0})
        placed = place_ids(make_policy(), store, simple_request(store, 10))
        assert placed.count("busy") == 5
        assert placed.count("quiet") == 5

    def test_slots_scale_with_container_size(self):
        store = make_store(["a"], capacity=100.0)
        make_policy().place(simple_request(store, 2, slots=4.0), store)
        assert store.load_slots[store.index_of("a")] == 8.0

    def test_scatter_targets_outside_allowed_set(self):
        scatter_ids = [f"s{i}" for i in range(50)]
        store = make_store(["base"] + scatter_ids, capacity=1000.0)
        request = simple_request(
            store,
            200,
            hosts=["base"],
            scatter_probability=0.5,
            scatter_candidates=store.indices_of(scatter_ids),
        )
        placed = place_ids(make_policy(), store, request)
        scattered = [h for h in placed if h != "base"]
        assert 50 < len(scattered) < 150  # ~50% of 200

    def test_zero_scatter_probability_never_scatters(self):
        store = make_store(["base", "other"], capacity=100.0)
        request = simple_request(
            store,
            50,
            hosts=["base"],
            scatter_probability=0.0,
            scatter_candidates=store.indices_of(["other"]),
        )
        assert set(place_ids(make_policy(), store, request)) == {"base"}

    def test_scatter_falls_back_to_allowed_when_targets_full(self):
        store = make_store(["base", "tiny"], capacity=100.0)
        store.capacity_slots[store.index_of("tiny")] = 0.0
        request = simple_request(
            store,
            10,
            hosts=["base"],
            scatter_probability=1.0,
            scatter_candidates=store.indices_of(["tiny"]),
        )
        assert set(place_ids(make_policy(), store, request)) == {"base"}

    def test_deterministic_given_seed(self):
        store = make_store([f"h{i}" for i in range(7)], capacity=100.0)
        baseline = store.snapshot()
        a = place_ids(make_policy(seed=3), store, simple_request(store, 20))
        store.restore(baseline)
        b = place_ids(make_policy(seed=3), store, simple_request(store, 20))
        assert a == b


def force_heap(monkeypatch):
    """Disable the vectorized fast path so place() runs the heap."""
    monkeypatch.setattr(
        PlacementPolicy, "_no_host_can_fill", lambda self, *args: False
    )


class TestFastPathIdentity:
    """The vectorized scatter-free fast path must replicate the heap path
    exactly: same host sequence, same load columns, same RNG end state."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize(
        "count,n_hosts,slots",
        [(1, 5, 1.0), (23, 7, 1.0), (105, 10, 2.5), (800, 75, 1.0)],
    )
    def test_sequence_and_state_match_heap(self, seed, count, n_hosts, slots):
        ids = [f"h{i:05d}" for i in range(n_hosts)]

        def run(heap_only):
            store = make_store(ids, capacity=1e6)
            counts = store.service_counts("svc")
            # Uneven starting counts exercise the level-merge logic.
            counts.set_dense(np.arange(n_hosts) % 3)
            rng = np.random.default_rng(seed)
            policy = PlacementPolicy(rng)
            if heap_only:
                with pytest.MonkeyPatch.context() as mp:
                    force_heap(mp)
                    chosen = policy.place(
                        simple_request(
                            store, count, slots=slots, service_counts=counts
                        ),
                        store,
                    )
            else:
                chosen = policy.place(
                    simple_request(store, count, slots=slots, service_counts=counts),
                    store,
                )
            return list(chosen), store.load_slots.copy(), rng.random(4).tolist()

        heap_seq, heap_load, heap_tail = run(heap_only=True)
        fast_seq, fast_load, fast_tail = run(heap_only=False)
        assert fast_seq == heap_seq
        assert np.array_equal(fast_load, heap_load)
        # Identical trailing draws == identical RNG stream consumption.
        assert fast_tail == heap_tail

    def test_fast_path_declines_when_a_host_may_fill(self):
        store = make_store(["a", "b"], capacity=10.0)
        policy = make_policy()
        request = simple_request(store, 12)
        assert not policy._no_host_can_fill(request, store, request.allowed)

    def test_fast_path_taken_when_roomy(self):
        store = make_store(["a", "b"], capacity=1000.0)
        policy = make_policy()
        request = simple_request(store, 12)
        assert policy._no_host_can_fill(request, store, request.allowed)
