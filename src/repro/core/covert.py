"""The n-way covert-channel test primitive ``CTest`` (paper §4.3).

``CTest(i_1, ..., i_n) -> (b_1, ..., b_n)`` instructs all *n* instances to
simultaneously pressure a shared host resource and returns, per instance,
whether it observed contention above a threshold ``m``.  With each instance
contributing one unit of pressure, an instance tests positive only when at
least ``m`` pressurers (itself included) share its host — so ``m..2m-1``
positive instances in one test are *guaranteed* to share a single host.

The concrete channel here contends on the hardware random number generator,
chosen by the paper for its <1% background-contention rate.  A positive
verdict requires contention in at least ``required_rounds`` of
``total_rounds`` observations (the paper uses 30 of 60), which suppresses
both background false positives and scheduling false negatives.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, Sequence

import numpy as np

from repro.cloud.api import InstanceHandle
from repro.errors import InstanceGoneError, VerificationError
from repro.faults import FaultPlan, current_fault_plan
from repro.hardware.channels import DvfsFrequencyResource
from repro.hardware.rng_resource import ContentionResource
from repro.sandbox.base import ChannelPort, Sandbox
from repro.telemetry import HistogramSummary, MetricSet, current_telemetry


@dataclass(frozen=True)
class CTestResult:
    """Outcome of one n-way covert-channel test."""

    handles: tuple[InstanceHandle, ...]
    positive: tuple[bool, ...]

    @property
    def positive_handles(self) -> tuple[InstanceHandle, ...]:
        """The instances that observed contention above the threshold."""
        return tuple(h for h, p in zip(self.handles, self.positive) if p)

    @property
    def n_positive(self) -> int:
        """Number of positive instances."""
        return sum(self.positive)


class ChannelStats:
    """Cost accounting for covert-channel usage, backed by typed counters.

    The legacy field names (``n_tests``, ``busy_seconds``, ...) remain as
    properties over a per-channel :class:`~repro.telemetry.MetricSet`, so
    existing consumers keep working while the counters gain the telemetry
    semantics: re-entrant consumers take a :meth:`snapshot` before a call
    and read :meth:`since` deltas after, instead of resetting shared state
    (which double-counts when two verifications share one channel).

    ``retries`` counts tests re-run after an inconsistent verdict (by the
    verifier's retry policy); ``faults_injected`` counts the noise flips
    and mid-test deaths an active :class:`~repro.faults.FaultPlan` put
    into this channel's results.  Both stay 0 on a clean run.
    """

    def __init__(self) -> None:
        self.metrics = MetricSet()

    @property
    def n_tests(self) -> int:
        return int(self.metrics.counter("tests"))

    @property
    def n_instance_slots(self) -> int:
        return int(self.metrics.counter("instance_slots"))

    @property
    def busy_seconds(self) -> float:
        return float(self.metrics.counter("busy_seconds"))

    @property
    def batches(self) -> int:
        return int(self.metrics.counter("batches"))

    @property
    def retries(self) -> int:
        return int(self.metrics.counter("retries"))

    @retries.setter
    def retries(self, value: int) -> None:
        self.metrics.counters["retries"] = value

    @property
    def faults_injected(self) -> int:
        return int(self.metrics.counter("faults_injected"))

    @faults_injected.setter
    def faults_injected(self, value: int) -> None:
        self.metrics.counters["faults_injected"] = value

    @property
    def per_batch_tests(self) -> HistogramSummary:
        """Read-only summary view of per-batch test counts.

        Backed by the ``batch_tests`` histogram (count/total/min/max/mean)
        instead of the raw per-batch list this attribute used to be, so a
        long campaign's memory stays O(1) next to the typed metrics.
        Consumers that relied on the list should read the summary fields
        — the raw sequence is no longer retained.
        """
        return self.metrics.histograms.get("batch_tests", HistogramSummary())

    def snapshot(self) -> dict[str, float]:
        """Counter snapshot for re-entrancy-safe per-call deltas."""
        return self.metrics.snapshot()

    def since(self, snapshot: dict[str, float]) -> dict[str, float]:
        """Counter growth since :meth:`snapshot` (absent keys grew by 0)."""
        return self.metrics.since(snapshot)

    def record_batch(self, group_sizes: Sequence[int], seconds: float) -> None:
        """Record one (possibly parallel) batch of tests."""
        self.metrics.inc("tests", len(group_sizes))
        self.metrics.inc("instance_slots", sum(group_sizes))
        self.metrics.inc("busy_seconds", seconds)
        self.metrics.inc("batches")
        self.metrics.observe("batch_tests", len(group_sizes))

    def summary(self) -> str:
        """One-line human-readable report of the counters."""
        text = (
            f"{self.n_tests} tests in {self.batches} batches, "
            f"{self.busy_seconds:.1f}s busy"
        )
        if self.retries or self.faults_injected:
            text += (
                f", {self.retries} retries, "
                f"{self.faults_injected} faults injected"
            )
        return text


class CovertChannel(abc.ABC):
    """Abstract CTest provider."""

    def __init__(self) -> None:
        self.stats = ChannelStats()

    @abc.abstractmethod
    def ctest_batch(
        self,
        groups: Sequence[Sequence[InstanceHandle]],
        threshold_m: int | Sequence[int],
    ) -> list[CTestResult]:
        """Run several CTests *concurrently* and return one result each.

        ``threshold_m`` may be a single threshold for every group or one
        per group (the threshold is an analysis parameter of each test,
        paper §4.3).  Concurrent groups interfere if they share hosts; the
        caller is responsible for only batching groups that are guaranteed
        disjoint (e.g. different CPU models, or Gen 2 fingerprints, which
        cannot produce false negatives).
        """

    def ctest(
        self, handles: Sequence[InstanceHandle], threshold_m: int = 2
    ) -> CTestResult:
        """Run a single CTest over ``handles``."""
        return self.ctest_batch([handles], threshold_m)[0]


class RngCovertChannel(CovertChannel):
    """CTest over hardware-RNG contention (the paper's channel).

    Also the concrete base of every registry-backed channel: subclasses
    *declare* their :attr:`kind` (a :mod:`repro.hardware.channels` registry
    name) instead of overriding the start/observe/stop/port hooks, and the
    generic sandbox channel surface does the per-kind routing.

    Parameters
    ----------
    total_rounds / required_rounds:
        An instance is positive when at least ``required_rounds`` of its
        ``total_rounds`` observations show contention >= the threshold.
        The paper requires 30 of 60; with sub-1% background contention the
        resulting false-positive risk is negligible.
    seconds_per_test:
        Wall-clock duration of one test window (all rounds); concurrent
        groups in a batch share the window.
    fault_plan:
        Optional deterministic fault schedule injecting per-test verdict
        noise and mid-test instance deaths.  Defaults to the ambient plan
        (:func:`~repro.faults.current_fault_plan`), so channels built
        inside a fault-injected experiment cell pick it up automatically.
    vectorized:
        Use the batched round engine (one
        :meth:`~repro.hardware.rng_resource.RngContentionResource.observe_rounds`
        call per host per test window) when stream identity with the
        scalar per-round loop is provable; fall back to the loop
        otherwise.  Both engines produce byte-identical verdicts, hit
        counts, and RNG end states — the flag exists for benchmarking and
        belt-and-braces debugging, not because results differ.
    """

    #: Registry name of the covert-channel kind this class tests over.
    kind: ClassVar[str] = "rng"

    def __init__(
        self,
        total_rounds: int = 60,
        required_rounds: int = 30,
        seconds_per_test: float = 1.2,
        fault_plan: FaultPlan | None = None,
        vectorized: bool = True,
    ) -> None:
        super().__init__()
        if not 0 < required_rounds <= total_rounds:
            raise VerificationError(
                f"required_rounds must be in (0, total_rounds], got "
                f"{required_rounds}/{total_rounds}"
            )
        self.total_rounds = total_rounds
        self.required_rounds = required_rounds
        self.seconds_per_test = seconds_per_test
        self.fault_plan = fault_plan if fault_plan is not None else current_fault_plan()
        self.vectorized = vectorized
        self._batch_serial = 0
        #: Per-instance contention-hit counts of the most recent test
        #: window (diagnostics; the identity suite pins loop vs batched).
        self._last_hits: dict[str, int] = {}

    # Resource hooks, routed through the generic sandbox channel surface
    # by declared kind.  The ``_observe``/``_port`` pair must stay
    # consistent: ``_port`` yields the host resource whose batched engine
    # reproduces ``_observe``'s scalar stream, and the vectorized path
    # refuses to run (falls back to the loop) when a subclass overrides
    # one without the other.
    def _start(self, sandbox) -> None:
        sandbox.start_channel_pressure(self.kind)

    def _observe(self, sandbox) -> int:
        return sandbox.observe_channel_contention(self.kind)

    def _stop(self, sandbox) -> None:
        sandbox.stop_channel_pressure(self.kind)

    def _port(self, sandbox) -> ChannelPort | None:
        return sandbox.channel_port(self.kind)

    def ctest_batch(
        self,
        groups: Sequence[Sequence[InstanceHandle]],
        threshold_m: int | Sequence[int],
    ) -> list[CTestResult]:
        if isinstance(threshold_m, int):
            thresholds = [threshold_m] * len(groups)
        else:
            thresholds = list(threshold_m)
            if len(thresholds) != len(groups):
                raise VerificationError(
                    f"got {len(thresholds)} thresholds for {len(groups)} groups"
                )
        if any(t < 2 for t in thresholds):
            raise VerificationError(f"thresholds must be >= 2, got {thresholds}")
        flat: list[InstanceHandle] = [h for group in groups for h in group]
        if len({h.instance_id for h in flat}) != len(flat):
            raise VerificationError("an instance appears twice in one CTest batch")

        # One serial number per ctest_batch call keys the fault plan's
        # decisions, so a *retry* of the same chunks is a fresh draw.
        serial = self._batch_serial
        self._batch_serial += 1
        telemetry = current_telemetry()
        span = telemetry.span(
            "ctest.batch",
            serial=serial,
            groups=len(groups),
            sizes=[len(group) for group in groups],
            thresholds=list(thresholds),
            rounds=self.total_rounds,
        )
        try:
            results = self._run_ctest_batch(groups, thresholds, serial)
        finally:
            span.close()
        span.set(positives=[result.n_positive for result in results])
        telemetry.count("ctest.tests", len(groups))
        telemetry.count("ctest.instance_slots", sum(len(g) for g in groups))
        telemetry.count("ctest.busy_seconds", self.seconds_per_test)
        telemetry.count("ctest.batches")
        return results

    def _run_ctest_batch(
        self,
        groups: Sequence[Sequence[InstanceHandle]],
        thresholds: list[int],
        serial: int,
    ) -> list[CTestResult]:
        flat: list[InstanceHandle] = [h for group in groups for h in group]
        threshold_of = {
            h.instance_id: t for group, t in zip(groups, thresholds) for h in group
        }
        plan = self.fault_plan
        death_round: dict[str, int] = {}
        if plan is not None:
            for handle in flat:
                when = plan.ctest_death_round(
                    f"b{serial}:{handle.instance_id}", self.total_rounds
                )
                if when is not None:
                    death_round[handle.instance_id] = when
                    self.stats.faults_injected += 1

        # Instances that stop responding mid-test (injected deaths, or a
        # platform reap racing the test) stop pressuring and report no
        # further rounds; the attacker reads silence as a negative.
        dead: set[str] = set()
        started: list[InstanceHandle] = []
        for handle in flat:
            try:
                handle.run(self._start)
                started.append(handle)
            except InstanceGoneError:
                dead.add(handle.instance_id)
        try:
            hits = None
            if self.vectorized:
                hits = self._observe_window_batched(
                    flat, dead, death_round, threshold_of
                )
            if hits is None:
                hits = self._observe_window_loop(
                    flat, dead, death_round, threshold_of
                )
            self._last_hits = hits
            # The test window occupies wall time *while* the pressure is
            # on — which is exactly what a platform-side abuse monitor
            # gets to observe.
            for handle in flat:
                if handle.instance_id in dead:
                    continue
                try:
                    handle.run(lambda sandbox: sandbox.sleep(self.seconds_per_test))
                except InstanceGoneError:
                    dead.add(handle.instance_id)
                    continue
                break
        finally:
            for handle in started:
                if handle.instance_id in dead:
                    continue
                try:
                    handle.run(self._stop)
                except InstanceGoneError:
                    pass

        self.stats.record_batch([len(g) for g in groups], self.seconds_per_test)

        results = []
        for group in groups:
            positive = []
            for handle in group:
                instance_id = handle.instance_id
                verdict = (
                    instance_id not in dead
                    and hits[instance_id] >= self.required_rounds
                )
                if plan is not None and plan.ctest_noise(f"b{serial}:{instance_id}"):
                    verdict = not verdict
                    self.stats.faults_injected += 1
                positive.append(verdict)
            results.append(
                CTestResult(handles=tuple(group), positive=tuple(positive))
            )
        return results

    # ------------------------------------------------------------------
    # Round engines: scalar loop and vectorized fast path
    # ------------------------------------------------------------------
    def _observe_window_loop(
        self,
        flat: Sequence[InstanceHandle],
        dead: set[str],
        death_round: dict[str, int],
        threshold_of: dict[str, int],
    ) -> dict[str, int]:
        """Scalar reference engine: one probe round-trip per instance per
        round, visiting instances in flat order within each round."""
        hits = {handle.instance_id: 0 for handle in flat}
        for round_index in range(self.total_rounds):
            for handle in flat:
                instance_id = handle.instance_id
                if instance_id in dead:
                    continue
                if death_round.get(instance_id) == round_index:
                    dead.add(instance_id)
                    try:
                        handle.run(self._stop)
                    except InstanceGoneError:
                        pass
                    continue
                try:
                    level = handle.run(self._observe)
                except InstanceGoneError:
                    dead.add(instance_id)
                    continue
                if level >= threshold_of[instance_id]:
                    hits[instance_id] += 1
        return hits

    def _observe_window_batched(
        self,
        flat: Sequence[InstanceHandle],
        dead: set[str],
        death_round: dict[str, int],
        threshold_of: dict[str, int],
    ) -> dict[str, int] | None:
        """Vectorized engine: one ``observe_rounds`` call per host per
        window, byte-identical to :meth:`_observe_window_loop`.

        Returns ``None`` — *before consuming any randomness* — whenever
        stream identity with the scalar loop is not provable: a subclass
        changed the observe/port pairing, a sandbox customized its scalar
        observation, or a host resource overrides the contention model.
        The caller then runs the loop engine on untouched streams.
        """
        if not self._vector_capable():
            return None
        hits = {handle.instance_id: 0 for handle in flat}
        live: list[InstanceHandle] = []
        ports: dict[str, ChannelPort] = {}
        for handle in flat:
            if handle.instance_id in dead:
                continue
            try:
                port = handle.run(self._port)
            except InstanceGoneError:
                # The loop engine would discover this at the instance's
                # round-0 observe: no observations, no stop call (its
                # stale pressure keeps counting for co-residents, which
                # ``observe_rounds`` models as external pressure).
                dead.add(handle.instance_id)
                continue
            if port is None:
                return None
            resource = port.resource
            if (
                type(resource).observe is not ContentionResource.observe
                or type(resource).observe_rounds
                is not ContentionResource.observe_rounds
            ):
                return None
            ports[handle.instance_id] = port
            live.append(handle)
        if not live:
            return hits

        total_rounds = self.total_rounds

        def window(sandboxes: list[Sandbox]) -> list[np.ndarray]:
            ids = [sandbox.sandbox_id for sandbox in sandboxes]
            resource = ports[ids[0]].resource
            return resource.observe_rounds(
                [(instance_id, ports[instance_id].rng) for instance_id in ids],
                total_rounds,
                stop_rounds=[death_round.get(instance_id) for instance_id in ids],
            )

        # One observation call per host; ``run_batch`` preserves the flat
        # (schedule) order within each host, which is what the death-slot
        # semantics of ``observe_rounds`` key on.
        for members, levels in InstanceHandle.run_batch(live, window):
            for handle, level_stream in zip(members, levels):
                instance_id = handle.instance_id
                hits[instance_id] = int(
                    np.count_nonzero(level_stream >= threshold_of[instance_id])
                )
        # Mid-window fault deaths: the loop engine stops the dying
        # instance's pressure at its death slot; the batched engine
        # already truncated its observations and pressure contribution,
        # so only the state transition (dead + unregister) remains.
        for handle in live:
            instance_id = handle.instance_id
            if death_round.get(instance_id) is not None:
                dead.add(instance_id)
                try:
                    handle.run(self._stop)
                except InstanceGoneError:
                    pass
        return hits

    def _vector_capable(self) -> bool:
        """Whether this channel instance may use the batched engine.

        The observe/port hook pair must be one of the known-consistent
        pairs; a subclass that overrides ``_observe`` without the matching
        ``_port`` (or vice versa) silently loses the fast path instead of
        silently changing physics.
        """
        pair = (type(self)._observe, type(self)._port)
        return pair in _VECTOR_SAFE_ENGINES


class MemoryBusCovertChannel(RngCovertChannel):
    """CTest over memory-bus contention (the prior-work channel).

    Varadarajan et al. verified VM co-location through the memory-bus
    contention channel of Wu et al.  It works, but ordinary tenants
    exercise the bus constantly, so background contention is common and a
    test must either integrate longer or accept false positives — one of
    the reasons the paper builds its methodology on the rarely-used RNG
    instead.  The default window matches the several-seconds-per-test
    figure the paper quotes for this channel.
    """

    kind: ClassVar[str] = "bus"

    def __init__(
        self,
        total_rounds: int = 60,
        required_rounds: int = 42,
        seconds_per_test: float = 4.0,
        fault_plan: FaultPlan | None = None,
        vectorized: bool = True,
    ) -> None:
        super().__init__(
            total_rounds=total_rounds,
            required_rounds=required_rounds,
            seconds_per_test=seconds_per_test,
            fault_plan=fault_plan,
            vectorized=vectorized,
        )


class LlcOccupancyChannel(RngCovertChannel):
    """CTest over LLC cache-occupancy contention (Zhao & Fletcher).

    The per-round signal is coarse — occupancy stops resolving individual
    sweepers once the cache is fully thrashed (the resource's
    ``saturation`` clamp) — and ordinary tenant working sets keep the
    background-contention floor an order of magnitude above the RNG
    channel's, so the default window integrates as long as the RNG test
    but accepts a laxer hit quota.  Everything else (``observe_rounds``
    batching, fault-death semantics, verdict noise) is the shared engine,
    unchanged.
    """

    kind: ClassVar[str] = "llc"

    def __init__(
        self,
        total_rounds: int = 60,
        required_rounds: int = 36,
        seconds_per_test: float = 2.5,
        fault_plan: FaultPlan | None = None,
        vectorized: bool = True,
    ) -> None:
        super().__init__(
            total_rounds=total_rounds,
            required_rounds=required_rounds,
            seconds_per_test=seconds_per_test,
            fault_plan=fault_plan,
            vectorized=vectorized,
        )


class DvfsFingerprintChannel(RngCovertChannel):
    """CTest over DVFS frequency-step contention (Dipta et al.).

    Pressure here is *sustained CPU load*: ``_start`` registers a busy
    period on the host's activity meter (visible to co-located probes like
    any other work; consumes no sandbox randomness) before joining the
    frequency-step contention domain.  What the guest physically records
    is its own spin-loop frequency — the sustained-load frequency *trace*
    exposed by :meth:`frequency_trace_hz` — but the level-to-frequency map
    is strictly monotone decreasing
    (:meth:`~repro.hardware.channels.DvfsFrequencyResource.frequency_of_level`),
    so thresholding the level stream at ``m`` is the same verdict as
    thresholding the frequency trace at :meth:`frequency_threshold_hz`,
    and the CTest verdict machinery runs unchanged.
    """

    kind: ClassVar[str] = "dvfs"

    def __init__(
        self,
        total_rounds: int = 40,
        required_rounds: int = 24,
        seconds_per_test: float = 3.0,
        fault_plan: FaultPlan | None = None,
        vectorized: bool = True,
    ) -> None:
        super().__init__(
            total_rounds=total_rounds,
            required_rounds=required_rounds,
            seconds_per_test=seconds_per_test,
            fault_plan=fault_plan,
            vectorized=vectorized,
        )

    def _start(self, sandbox) -> None:
        # The pressurer *is* a sustained load: register the busy period
        # first so co-located activity probes see it for the whole window,
        # then join the frequency-step contention domain.
        sandbox.run_busy(self.seconds_per_test)
        sandbox.start_channel_pressure(self.kind)

    def _frequency_resource(self, sandbox: Sandbox) -> DvfsFrequencyResource:
        port = sandbox.channel_port(self.kind)
        if port is None:
            raise VerificationError(
                "customized sandbox does not expose a dvfs channel port"
            )
        resource = port.resource
        if not isinstance(resource, DvfsFrequencyResource):
            raise VerificationError(
                f"dvfs channel needs a DvfsFrequencyResource, got "
                f"{type(resource).__name__}"
            )
        return resource

    def frequency_trace_hz(self, sandbox: Sandbox, levels) -> np.ndarray:
        """Map one window's contention levels to the guest-visible trace.

        This is the raw measurement a real attacker records: one achieved
        spin-loop frequency per round, via
        :func:`repro.core.frequency.sustained_load_frequency_hz`.
        """
        from repro.core.frequency import sustained_load_frequency_hz

        resource = self._frequency_resource(sandbox)
        return np.asarray(sustained_load_frequency_hz(resource, levels))

    def frequency_threshold_hz(self, sandbox: Sandbox, threshold_m: int) -> float:
        """Frequency below which a round counts as contended at ``m``."""
        return self._frequency_resource(sandbox).frequency_of_level(threshold_m)


#: Channel kind -> CTest provider class: the construction-side mirror of
#: the :mod:`repro.hardware.channels` resource registry.
COVERT_CHANNEL_CLASSES: dict[str, type[RngCovertChannel]] = {
    RngCovertChannel.kind: RngCovertChannel,
    MemoryBusCovertChannel.kind: MemoryBusCovertChannel,
    LlcOccupancyChannel.kind: LlcOccupancyChannel,
    DvfsFingerprintChannel.kind: DvfsFingerprintChannel,
}


def covert_channel_for(kind: str, **kwargs) -> RngCovertChannel:
    """Build the CTest provider for a channel kind.

    Keyword arguments pass through to the class constructor (rounds,
    window length, ``fault_plan``, ``vectorized``).
    """
    try:
        cls = COVERT_CHANNEL_CLASSES[kind]
    except KeyError:
        known = ", ".join(sorted(COVERT_CHANNEL_CLASSES))
        raise VerificationError(
            f"no covert channel for kind {kind!r}; known kinds: {known}"
        ) from None
    return cls(**kwargs)


#: Observe/port hook pairs proven stream-identical between the scalar and
#: batched engines; subclasses that override either hook fall off this set
#: and run the scalar loop (correct, just slower) until they register a
#: consistent pair of their own.  Every kind-declaring channel inherits
#: the one generic pair — per-kind routing lives in the sandbox channel
#: surface, not in the hooks — so the set has a single entry.
_VECTOR_SAFE_ENGINES = {
    (RngCovertChannel._observe, RngCovertChannel._port),
}
