"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.analysis.asciichart import render_cdf, render_series


class TestRenderSeries:
    def test_contains_title_and_marks(self):
        text = render_series([0, 1, 2], [0, 1, 4], title="squares")
        assert "squares" in text
        assert "*" in text

    def test_dimensions(self):
        text = render_series([0, 1], [0, 1], width=30, height=8, title="t")
        plot_lines = [l for l in text.splitlines() if "|" in l]
        assert len(plot_lines) == 8
        assert all(len(l.split("|", 1)[1]) <= 30 for l in plot_lines)

    def test_extremes_marked(self):
        text = render_series([0, 1], [0, 10], height=5, width=10)
        lines = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        assert lines[0].rstrip().endswith("*")  # max at top-right
        assert lines[-1].startswith("*")  # min at bottom-left

    def test_log_x_axis_labels(self):
        text = render_series([1e-4, 1e0, 1e3], [0, 1, 0], log_x=True)
        assert "1e-4" in text
        assert "1e3" in text

    def test_constant_series_does_not_crash(self):
        text = render_series([0, 1, 2], [5, 5, 5])
        assert "*" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_series([1, 2], [1])

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            render_series([1], [1])

    def test_axis_bounds_printed(self):
        text = render_series([2.0, 8.0], [1.0, 3.0])
        assert "2" in text and "8" in text
        assert "3" in text and "1" in text


class TestRenderCdf:
    def test_monotone_shape(self):
        text = render_cdf([1, 2, 3, 4, 5], title="cdf")
        assert "cdf" in text
        assert "*" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_cdf([])
