"""Figure 12 and §5.2: estimating the scale of the FaaS clusters.

Deploy eight services from each of the three accounts and prime all 24 with
optimized launches; the cumulative number of unique apparent hosts estimates
the cluster size, and the attacker's at-once footprint over that estimate is
the attacker's datacenter coverage.

Paper reference: 474 apparent hosts in us-east1, 1702 in us-central1, 199
in us-west1; the attacker covers 59% / 53% / 82% of them, peaking at 904
simultaneously occupied hosts in us-central1 for ~23 USD.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.core.attack.census import CensusResult, estimate_cluster_size
from repro.core.attack.strategies import optimized_launch
from repro.experiments.base import VICTIM_ACCOUNTS, default_env
from repro.runner import CellSpec, RunnerConfig, run_cells

PAPER_CENSUS = {"us-east1": 474, "us-central1": 1702, "us-west1": 199}
PAPER_ATTACKER_SHARE = {"us-east1": 0.59, "us-central1": 0.53, "us-west1": 0.82}
PAPER_MAX_HOSTS_AT_ONCE = 904


@dataclass(frozen=True)
class CensusConfig:
    """Configuration for the Fig. 12 census."""

    regions: tuple[str, ...] = ("us-east1", "us-central1", "us-west1")
    services_per_account: int = 8
    launches_per_service: int = 4
    instances_per_launch: int = 800
    interval: float = 10 * units.MINUTE
    base_seed: int = 700


@dataclass
class RegionCensus:
    """Census outcome for one region."""

    region: str
    census: CensusResult
    attacker_hosts_at_once: int
    attacker_cost_usd: float

    @property
    def total_hosts(self) -> int:
        return self.census.total_unique

    @property
    def attacker_share(self) -> float:
        """Fraction of the census the attacker occupied at once."""
        return self.attacker_hosts_at_once / self.total_hosts

    @property
    def growth_flattens(self) -> bool:
        """True when late launches discover far fewer hosts than early ones."""
        cumulative = self.census.cumulative_unique
        third = max(1, len(cumulative) // 3)
        early = cumulative[third] - cumulative[0]
        late = cumulative[-1] - cumulative[-third - 1]
        return late < early


@dataclass
class CensusSummary:
    """Census outcomes for every region."""

    regions: list[RegionCensus] = field(default_factory=list)

    def by_region(self, region: str) -> RegionCensus:
        """Look up one region's census (KeyError if absent)."""
        for entry in self.regions:
            if entry.region == region:
                return entry
        raise KeyError(region)


def _region_cell(params: dict, seed: int) -> RegionCensus:
    """One Fig. 12 cell: census one region, then measure the footprint."""
    region = params["region"]
    env = default_env(region, seed=seed)
    clients = [env.attacker] + [env.victim(a) for a in VICTIM_ACCOUNTS]
    census = estimate_cluster_size(
        clients,
        services_per_account=params["services_per_account"],
        launches_per_service=params["launches_per_service"],
        instances_per_launch=params["instances_per_launch"],
        interval_s=params["interval"],
    )
    # Attacker footprint at once: a fresh standard optimized attack in
    # the same region (fresh environment keeps the census unbiased).
    attack_env = default_env(region, seed=seed + 50)
    outcome = optimized_launch(attack_env.attacker)
    return RegionCensus(
        region=region,
        census=census,
        attacker_hosts_at_once=len(outcome.apparent_hosts),
        attacker_cost_usd=outcome.cost_usd,
    )


def run(
    config: CensusConfig = CensusConfig(),
    runner: RunnerConfig | None = None,
) -> CensusSummary:
    """Run the census in each region, then measure the attacker footprint."""
    specs = [
        CellSpec(
            experiment="fig12",
            fn=_region_cell,
            config={
                "region": region,
                "services_per_account": config.services_per_account,
                "launches_per_service": config.launches_per_service,
                "instances_per_launch": config.instances_per_launch,
                "interval": config.interval,
            },
            seed=config.base_seed + idx,
            label=region,
        )
        for idx, region in enumerate(config.regions)
    ]
    summary = CensusSummary()
    summary.regions.extend(cell.value for cell in run_cells(specs, runner))
    return summary
