"""Unit tests for black-box policy inference."""

import pytest

from repro.analysis.policy_inference import (
    IdlePolicyEstimate,
    estimate_base_set_size,
    estimate_hot_window,
    estimate_recruit_rate,
    fit_idle_policy,
)


class TestIdlePolicyFit:
    def linear_series(self, grace_min=2.0, deadline_min=12.0, total=800, step=0.5):
        series = []
        t = 0.0
        while t <= 16.0:
            if t <= grace_min:
                alive = total
            elif t >= deadline_min:
                alive = 0
            else:
                alive = int(total * (deadline_min - t) / (deadline_min - grace_min))
            series.append((t, alive))
            t += step
        return series

    def test_recovers_grace_and_deadline(self):
        estimate = fit_idle_policy(self.linear_series(), total_instances=800)
        assert estimate.grace_s == pytest.approx(120.0, abs=45.0)
        assert estimate.deadline_s == pytest.approx(720.0, abs=60.0)

    def test_survival_fraction_shape(self):
        estimate = IdlePolicyEstimate(grace_s=120.0, deadline_s=720.0)
        assert estimate.survival_fraction(60.0) == 1.0
        assert estimate.survival_fraction(800.0) == 0.0
        assert estimate.survival_fraction(420.0) == pytest.approx(0.5)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_idle_policy([(0.0, 10), (1.0, 10)], total_instances=10)


class TestBaseSetSize:
    def test_median_of_footprints(self):
        assert estimate_base_set_size([75, 75, 74, 76, 75]) == 75

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            estimate_base_set_size([])

    def test_robust_to_outlier(self):
        assert estimate_base_set_size([75, 75, 75, 120, 75]) == 75


class TestHotWindow:
    def test_brackets_true_window(self):
        growth = {2.0: 12, 10.0: 180, 30.0: 2, 45.0: 1}
        window = estimate_hot_window(growth)
        assert 10.0 < window <= 30.0

    def test_all_recruiting_returns_max(self):
        growth = {2.0: 50, 10.0: 180}
        assert estimate_hot_window(growth) == 10.0

    def test_no_recruitment_rejected(self):
        with pytest.raises(ValueError):
            estimate_hot_window({10.0: 1, 30.0: 0})


class TestRecruitRate:
    def test_recovers_rate(self):
        idle = IdlePolicyEstimate(grace_s=120.0, deadline_s=720.0)
        # 10-minute interval: survival (720-600)/600 = 0.2 -> 640 replaced.
        footprints = [75, 115, 155, 195, 235, 275]  # +40 per hot launch
        rate = estimate_recruit_rate(
            footprints, instances_per_launch=800, interval_s=600.0, idle_policy=idle
        )
        assert rate == pytest.approx(40 / 640, rel=0.05)

    def test_no_growth_is_zero_rate(self):
        idle = IdlePolicyEstimate(grace_s=120.0, deadline_s=720.0)
        rate = estimate_recruit_rate(
            [75, 75, 75], instances_per_launch=800, interval_s=600.0, idle_policy=idle
        )
        assert rate == 0.0

    def test_interval_inside_grace_rejected(self):
        idle = IdlePolicyEstimate(grace_s=120.0, deadline_s=720.0)
        with pytest.raises(ValueError):
            estimate_recruit_rate(
                [75, 80], instances_per_launch=800, interval_s=60.0, idle_policy=idle
            )

    def test_single_launch_rejected(self):
        idle = IdlePolicyEstimate(grace_s=120.0, deadline_s=720.0)
        with pytest.raises(ValueError):
            estimate_recruit_rate(
                [75], instances_per_launch=800, interval_s=600.0, idle_policy=idle
            )
