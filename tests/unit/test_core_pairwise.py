"""Unit tests for the pairwise baseline verifier."""

from repro.analysis.metrics import pair_confusion
from repro.cloud.services import ServiceConfig
from repro.core.covert import RngCovertChannel
from repro.core.pairwise import PairwiseVerifier


def launch(env, n):
    client = env.attacker
    service = client.deploy(ServiceConfig(name="svc"))
    handles = client.connect(service, n)
    truth = {h.instance_id: env.orchestrator.true_host_of(h.instance_id) for h in handles}
    return handles, truth


class TestPairwiseVerifier:
    def test_recovers_true_clusters(self, tiny_env):
        handles, truth = launch(tiny_env, 12)
        report = PairwiseVerifier(RngCovertChannel()).verify(handles)
        predicted = {
            h.instance_id: idx
            for idx, cluster in enumerate(report.clusters)
            for h in cluster
        }
        confusion = pair_confusion(predicted, truth)
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0

    def test_quadratic_test_count(self, tiny_env):
        handles, truth = launch(tiny_env, 12)
        report = PairwiseVerifier(RngCovertChannel()).verify(handles)
        max_tests = 12 * 11 // 2
        # Transitivity pruning saves some tests but the scaling is ~N^2.
        assert max_tests * 0.4 < report.n_tests <= max_tests

    def test_serialized_wall_time(self, tiny_env):
        handles, _ = launch(tiny_env, 8)
        channel = RngCovertChannel()
        report = PairwiseVerifier(channel).verify(handles)
        assert report.busy_seconds >= report.n_tests * channel.seconds_per_test * 0.99

    def test_sie_eliminates_nothing_in_faas(self, tiny_env):
        """Paper §4.3: the FaaS orchestrator packs instances of a service
        onto shared hosts, so Single Instance Elimination removes nothing."""
        handles, truth = launch(tiny_env, 30)
        # With 30 instances on ~5 base hosts, every instance has a sibling.
        hosts = list(truth.values())
        assert all(hosts.count(h) >= 2 for h in hosts)
        report = PairwiseVerifier(RngCovertChannel(), use_sie=True).verify(handles)
        assert report.eliminated_by_sie == 0

    def test_sie_would_help_with_singletons(self, tiny_env):
        """Control: SIE does eliminate instances that are truly alone."""
        handles, truth = launch(tiny_env, 10)
        by_host: dict = {}
        for h in handles:
            by_host.setdefault(truth[h.instance_id], []).append(h)
        reps = [members[0] for members in by_host.values()]
        assert len(reps) >= 3
        report = PairwiseVerifier(RngCovertChannel(), use_sie=True).verify(reps)
        assert report.eliminated_by_sie == len(reps)

    def test_two_instances(self, tiny_env):
        handles, truth = launch(tiny_env, 2)
        report = PairwiseVerifier(RngCovertChannel()).verify(handles)
        expected = 1 if len(set(truth.values())) == 1 else 2
        assert report.n_hosts == expected
