"""Unit tests for the deterministic fault-injection subsystem."""

import pickle

import pytest

from repro.errors import FaultSpecError
from repro.faults import (
    DEFAULT_CTEST_RETRY,
    DEFAULT_LAUNCH_RETRY,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    current_fault_plan,
    fault_context,
)


class TestFaultSpecParsing:
    def test_parses_aliases(self):
        spec = FaultSpec.parse(
            "launch=0.1,slow=0.05,slow_seconds=2.5,ctest=0.02,death=0.01,"
            "cell=0.3,seed=7"
        )
        assert spec.launch_error_rate == 0.1
        assert spec.slow_launch_rate == 0.05
        assert spec.slow_launch_seconds == 2.5
        assert spec.ctest_noise_rate == 0.02
        assert spec.ctest_death_rate == 0.01
        assert spec.cell_error_rate == 0.3
        assert spec.seed == 7

    def test_parses_full_field_names(self):
        spec = FaultSpec.parse("launch_error_rate=0.2,cell_error_rate=0.4")
        assert spec.launch_error_rate == 0.2
        assert spec.cell_error_rate == 0.4

    def test_empty_entries_and_whitespace_tolerated(self):
        spec = FaultSpec.parse(" launch = 0.1 , , seed = 3 ")
        assert spec.launch_error_rate == 0.1
        assert spec.seed == 3

    def test_unknown_key_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault spec key"):
            FaultSpec.parse("warp=0.5")

    def test_duplicate_key_rejected(self):
        with pytest.raises(FaultSpecError, match="duplicate"):
            FaultSpec.parse("launch=0.1,launch=0.2")

    def test_alias_and_full_name_collide(self):
        with pytest.raises(FaultSpecError, match="duplicate"):
            FaultSpec.parse("cell=0.1,cell_error_rate=0.2")

    def test_missing_equals_rejected(self):
        with pytest.raises(FaultSpecError, match="key=value"):
            FaultSpec.parse("launch")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(FaultSpecError, match="not a number"):
            FaultSpec.parse("launch=lots")

    @pytest.mark.parametrize("bad", ["launch=1.5", "ctest=-0.1", "death=2"])
    def test_out_of_range_rates_rejected(self, bad):
        with pytest.raises(FaultSpecError, match=r"\[0, 1\]"):
            FaultSpec.parse(bad)

    def test_negative_slow_seconds_rejected(self):
        with pytest.raises(FaultSpecError, match="slow_launch_seconds"):
            FaultSpec(slow_launch_seconds=-1.0)

    def test_enabled_property(self):
        assert not FaultSpec().enabled
        assert not FaultSpec(seed=99).enabled  # a seed alone injects nothing
        assert FaultSpec(cell_error_rate=0.01).enabled


class TestFaultPlanDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(FaultSpec(launch_error_rate=0.3, seed=11))
        b = FaultPlan(FaultSpec(launch_error_rate=0.3, seed=11))
        decisions_a = [a.launch_fails(f"i-{k}", 0) for k in range(200)]
        decisions_b = [b.launch_fails(f"i-{k}", 0) for k in range(200)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_order_independent(self):
        """The schedule is a pure function of the token, not of call order."""
        a = FaultPlan(FaultSpec(ctest_noise_rate=0.5, seed=3))
        b = FaultPlan(FaultSpec(ctest_noise_rate=0.5, seed=3))
        tokens = [f"b{i}:inst-{j}" for i in range(10) for j in range(5)]
        forward = {t: a.ctest_noise(t) for t in tokens}
        backward = {t: b.ctest_noise(t) for t in reversed(tokens)}
        assert forward == backward

    def test_different_seeds_differ(self):
        a = FaultPlan(FaultSpec(cell_error_rate=0.5, seed=1))
        b = FaultPlan(FaultSpec(cell_error_rate=0.5, seed=2))
        decisions_a = [a.cell_fails(f"c{k}", 0) for k in range(100)]
        decisions_b = [b.cell_fails(f"c{k}", 0) for k in range(100)]
        assert decisions_a != decisions_b

    def test_retry_attempt_is_a_fresh_draw(self):
        """Some instance that fails attempt 0 must succeed on a retry —
        otherwise bounded retries could never recover anything."""
        plan = FaultPlan(FaultSpec(launch_error_rate=0.4, seed=5))
        failed_then_ok = [
            iid
            for iid in (f"i-{k}" for k in range(100))
            if plan.launch_fails(iid, 0) and not plan.launch_fails(iid, 1)
        ]
        assert failed_then_ok

    def test_rate_is_approximately_honored(self):
        plan = FaultPlan(FaultSpec(launch_error_rate=0.25, seed=0))
        n = 4000
        hits = sum(plan.launch_fails(f"i-{k}", 0) for k in range(n))
        assert 0.20 < hits / n < 0.30

    def test_zero_rate_never_fires(self):
        plan = FaultPlan(FaultSpec(seed=123))
        assert not any(plan.launch_fails(f"i-{k}", 0) for k in range(50))
        assert all(plan.slow_launch_penalty(f"i-{k}") == 0.0 for k in range(50))
        assert plan.ctest_death_round("b0:i-0", 60) is None
        assert plan.counters.total_injected == 0

    def test_survives_pickling(self):
        plan = FaultPlan(FaultSpec(cell_error_rate=0.5, seed=9))
        clone = pickle.loads(pickle.dumps(plan))
        assert [clone.cell_fails(f"c{k}", 0) for k in range(50)] == [
            plan.cell_fails(f"c{k}", 0) for k in range(50)
        ]


class TestFaultPlanSites:
    def test_death_round_in_range_and_deterministic(self):
        plan = FaultPlan(FaultSpec(ctest_death_rate=0.5, seed=2))
        rounds = [plan.ctest_death_round(f"b0:i-{k}", 60) for k in range(200)]
        deaths = [r for r in rounds if r is not None]
        assert deaths
        assert all(0 <= r < 60 for r in deaths)
        assert len(set(deaths)) > 1  # the *when* varies, not just the *if*
        again = FaultPlan(FaultSpec(ctest_death_rate=0.5, seed=2))
        assert rounds == [again.ctest_death_round(f"b0:i-{k}", 60) for k in range(200)]

    def test_slow_launch_penalty_value(self):
        plan = FaultPlan(
            FaultSpec(slow_launch_rate=0.5, slow_launch_seconds=3.0, seed=4)
        )
        penalties = {plan.slow_launch_penalty(f"i-{k}") for k in range(100)}
        assert penalties == {0.0, 3.0}

    def test_counters_track_injections(self):
        plan = FaultPlan(FaultSpec(launch_error_rate=0.5, ctest_noise_rate=0.5, seed=6))
        launch_hits = sum(plan.launch_fails(f"i-{k}", 0) for k in range(100))
        noise_hits = sum(plan.ctest_noise(f"t{k}") for k in range(100))
        assert plan.counters.launch_errors == launch_hits
        assert plan.counters.ctest_noise == noise_hits
        assert plan.counters.total_injected == launch_hits + noise_hits
        assert str(launch_hits) in plan.counters.summary()

    def test_from_spec_roundtrip(self):
        plan = FaultPlan.from_spec("cell=0.25,seed=42")
        assert plan.enabled
        assert plan.spec.cell_error_rate == 0.25
        assert plan.spec.seed == 42
        assert not FaultPlan().enabled


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(max_retries=3, backoff_seconds=0.5, backoff_multiplier=2.0)
        assert [policy.backoff(a) for a in range(3)] == [0.5, 1.0, 2.0]

    def test_validation(self):
        with pytest.raises(FaultSpecError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(FaultSpecError):
            RetryPolicy(backoff_seconds=-0.1)
        with pytest.raises(FaultSpecError):
            RetryPolicy(backoff_multiplier=0.5)

    def test_defaults_match_historical_behavior(self):
        # One re-run of an inconsistent CTest, immediately — exactly the
        # pre-faults verifier behavior, so clean accounting is unchanged.
        assert DEFAULT_CTEST_RETRY.max_retries == 1
        assert DEFAULT_CTEST_RETRY.backoff(0) == 0.0
        assert DEFAULT_LAUNCH_RETRY.max_retries == 2


class TestFaultContext:
    def test_default_is_none(self):
        assert current_fault_plan() is None

    def test_context_sets_and_restores(self):
        plan = FaultPlan(FaultSpec(cell_error_rate=0.1))
        with fault_context(plan):
            assert current_fault_plan() is plan
            with fault_context(None):
                assert current_fault_plan() is None
            assert current_fault_plan() is plan
        assert current_fault_plan() is None
