"""Closing the loop: infer the orchestrator's policy parameters black-box
and compare them against the simulator's true profile values."""

import pytest

from repro import units
from repro.analysis.policy_inference import (
    estimate_base_set_size,
    estimate_hot_window,
    estimate_recruit_rate,
    fit_idle_policy,
)
from repro.experiments import idle_termination, launch_behavior


class TestPolicyInferenceLoop:
    @pytest.fixture(scope="class")
    def idle_estimate(self):
        result = idle_termination.run(
            idle_termination.IdleTerminationConfig(instances=400, seed=470)
        )
        return fit_idle_policy(result.series, total_instances=400)

    def test_idle_window_recovered(self, idle_estimate):
        true_grace = 2 * units.MINUTE
        true_deadline = 12 * units.MINUTE
        assert idle_estimate.grace_s == pytest.approx(true_grace, abs=60.0)
        assert idle_estimate.deadline_s == pytest.approx(true_deadline, abs=90.0)

    def test_base_set_size_recovered(self):
        result = launch_behavior.run_launch_series(
            launch_behavior.LaunchSeriesConfig(launches=3, instances=400, seed=471)
        )
        estimate = estimate_base_set_size(result.per_launch)
        assert estimate == 75  # the profile's shard_size

    def test_hot_window_recovered(self):
        results = launch_behavior.run_interval_sweep(
            launch_behavior.IntervalSweepConfig(
                intervals_minutes=(2.0, 10.0, 20.0, 30.0, 45.0),
                launches=3,
                instances=400,
                seed=472,
            )
        )
        growth = {interval: series.growth for interval, series in results.items()}
        window = estimate_hot_window(growth)
        # True hot window: 30 minutes; the bracket must contain/abut it.
        assert 20.0 <= window <= 37.5

    def test_recruit_rate_recovered(self, idle_estimate):
        series = launch_behavior.run_launch_series(
            launch_behavior.LaunchSeriesConfig(
                launches=5, instances=800, interval=10 * units.MINUTE, seed=473
            )
        )
        rate = estimate_recruit_rate(
            series.per_launch,
            instances_per_launch=800,
            interval_s=10 * units.MINUTE,
            idle_policy=idle_estimate,
        )
        # True helper_recruit_fraction is 0.064 in us-east1.
        assert rate == pytest.approx(0.064, rel=0.5)
