"""Target Victim Locator campaign: localizing an uncontrolled victim.

The coverage experiments stop at "some attacker instance shares a host
with the victim"; this campaign goes the last mile and *names* that
instance, with the victim treated as a genuine black box — probe-able
through its public URL, never instrumentable.  One cell runs the whole
kill chain on a paper-scale fleet: optimized attacker launch, fingerprint
dedup to one candidate cluster per server, then the lock/probe binary
search of :class:`~repro.core.attack.TargetVictimLocator`.  Scoring is
oracle-side only (``true_host_of``): did the located instance really
share the victim's host?

Two reports come out:

* **probes vs fleet size** — the localization cost is O(log n_servers)
  lock/probe rounds, so the probe count grows logarithmically while the
  fleet grows linearly;
* **coverage/latency tradeoff** — more probes per measurement buy noise
  immunity (localization success under injected probe faults) at the
  price of localization wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.cloud.services import ServiceConfig
from repro.cloud.topology import AccountPlacementPlan, RegionProfile
from repro.core.attack.locator import TargetVictimLocator, probe_latency_threshold
from repro.core.attack.strategies import optimized_launch
from repro.core.covert import RngCovertChannel
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.core.verification import ScalableVerifier, TaggedInstance
from repro.experiments.base import default_env
from repro.faults import FaultPlan, FaultSpec
from repro.runner import CellSpec, RunnerConfig, run_cells
from repro.telemetry import current_telemetry


@dataclass(frozen=True)
class LocatorConfig:
    """One localization-campaign sweep."""

    fleet_sizes: tuple[int, ...] = (24, 30, 40)
    repetitions: int = 4
    n_services: int = 3
    launches: int = 4
    instances_per_service: int = 16
    victim_account: str = "account-2"
    processing_seconds: float = 0.05
    probes_per_measure: int = 3
    #: Explicit probe-noise rate for the tradeoff sweep; 0 leaves the
    #: ambient fault plan (``--faults``) in charge.
    probe_noise_rate: float = 0.0
    base_seed: int = 700


@dataclass
class LocatorPoint:
    """Aggregated outcomes of all repetitions at one fleet size."""

    n_hosts: int
    runs: int = 0
    hits: int = 0
    co_resident: int = 0
    rounds: list[int] = field(default_factory=list)
    probes: list[int] = field(default_factory=list)
    candidates: list[int] = field(default_factory=list)
    locate_seconds: list[float] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        """Hits over runs with a co-resident instance to find."""
        return self.hits / self.co_resident if self.co_resident else 0.0

    @property
    def mean_probes(self) -> float:
        return float(np.mean(self.probes)) if self.probes else 0.0

    @property
    def mean_rounds(self) -> float:
        return float(np.mean(self.rounds)) if self.rounds else 0.0

    @property
    def mean_candidates(self) -> float:
        return float(np.mean(self.candidates)) if self.candidates else 0.0

    @property
    def mean_locate_seconds(self) -> float:
        return float(np.mean(self.locate_seconds)) if self.locate_seconds else 0.0


@dataclass
class LocatorSummary:
    """Sweep result: one :class:`LocatorPoint` per fleet size."""

    points: list[LocatorPoint] = field(default_factory=list)

    @property
    def overall_success_rate(self) -> float:
        hits = sum(p.hits for p in self.points)
        co = sum(p.co_resident for p in self.points)
        return hits / co if co else 0.0


def _scaled_profile(n_hosts: int) -> RegionProfile:
    """A paper-shaped region scaled down to ``n_hosts`` total hosts."""
    active = max(10, (2 * n_hosts) // 3)
    return RegionProfile(
        name=f"scaled-{n_hosts}",
        n_hosts=n_hosts,
        active_hosts=active,
        shard_size=5,
        helper_recruit_fraction=0.25,
        helper_pool_cap=max(12, active // 2),
        hot_min_concurrency=8,
        plan=AccountPlacementPlan(
            account_shards={"account-1": 0, "account-2": 1, "account-3": 2},
        ),
    )


def _locator_cell(params: dict, seed: int) -> dict:
    """One full localization campaign; returns raw oracle-scored metrics."""
    fault_plan = None
    if params["probe_noise_rate"] > 0.0:
        fault_plan = FaultPlan(
            FaultSpec(probe_noise_rate=params["probe_noise_rate"], seed=seed)
        )
    env = default_env(
        profile=_scaled_profile(params["n_hosts"]),
        seed=seed,
        fault_plan=fault_plan,
    )
    attacker = env.attacker
    outcome = optimized_launch(
        attacker,
        n_services=params["n_services"],
        launches=params["launches"],
        instances_per_service=params["instances_per_service"],
        interval_s=10 * units.MINUTE,
    )
    victim = env.victim(params["victim_account"])
    victim.deploy(ServiceConfig(name="victim"))
    victim.connect("victim", 1)
    victim_url = f"{params['victim_account']}/victim"

    pairs = fingerprint_gen1_instances(outcome.handles, p_boot=1.0)
    tagged = [
        TaggedInstance(handle, fp, fp.cpu_model)
        for handle, fp in pairs
        if handle.alive
    ]
    processing = params["processing_seconds"]
    locator = TargetVictimLocator(
        probe=lambda: attacker.probe(victim_url, processing),
        latency_threshold_s=probe_latency_threshold(processing),
        verifier=ScalableVerifier(RngCovertChannel()),
        probes_per_measure=params["probes_per_measure"],
    )
    started = env.clock.now()
    result = locator.locate(tagged)
    locate_seconds = env.clock.now() - started

    # Oracle scoring only: the attacker-side logic above never sees a
    # host id (THREAT_MODEL.md).
    orch = env.orchestrator
    victim_instance = orch.alive_instances(orch.services[victim_url])[0]
    victim_host = orch.true_host_of(victim_instance.instance_id)
    co_resident = any(
        orch.true_host_of(handle.instance_id) == victim_host
        for handle in outcome.handles
        if handle.alive
    )
    hit = (
        result.converged
        and orch.true_host_of(result.located.instance_id) == victim_host
    )
    return {
        "converged": result.converged,
        "failure": result.failure,
        "hit": bool(hit),
        "co_resident": bool(co_resident),
        "rounds": result.rounds,
        "probes": result.probes,
        "attempts": result.attempts,
        "candidates": result.initial_candidates,
        "baseline_latency_s": result.baseline_latency_s,
        "locked_latency_s": result.locked_latency_s,
        "locate_seconds": locate_seconds,
        "cost_usd": outcome.cost_usd,
    }


def _cell_params(config: LocatorConfig, n_hosts: int) -> dict:
    return {
        "n_hosts": n_hosts,
        "n_services": config.n_services,
        "launches": config.launches,
        "instances_per_service": config.instances_per_service,
        "victim_account": config.victim_account,
        "processing_seconds": config.processing_seconds,
        "probes_per_measure": config.probes_per_measure,
        "probe_noise_rate": config.probe_noise_rate,
    }


def run(
    config: LocatorConfig = LocatorConfig(),
    runner: RunnerConfig | None = None,
) -> LocatorSummary:
    """Run the fleet-size sweep; every repetition is an independent cell."""
    specs = [
        CellSpec(
            experiment="victim-locator",
            fn=_locator_cell,
            config=_cell_params(config, n_hosts),
            seed=config.base_seed + rep,
            label=f"hosts-{n_hosts}/rep{rep}",
        )
        for n_hosts in config.fleet_sizes
        for rep in range(config.repetitions)
    ]
    with current_telemetry().span(
        "victim_locator.sweep", cells=len(specs), sizes=list(config.fleet_sizes)
    ):
        results = run_cells(specs, runner)

    summary = LocatorSummary()
    cursor = 0
    for n_hosts in config.fleet_sizes:
        point = LocatorPoint(n_hosts=n_hosts)
        for result in results[cursor : cursor + config.repetitions]:
            value = result.value
            point.runs += 1
            point.hits += int(value["hit"])
            point.co_resident += int(value["co_resident"])
            point.rounds.append(value["rounds"])
            point.probes.append(value["probes"])
            point.candidates.append(value["candidates"])
            point.locate_seconds.append(value["locate_seconds"])
        cursor += config.repetitions
        summary.points.append(point)
    return summary


def run_tradeoff(
    config: LocatorConfig = LocatorConfig(),
    probes_grid: tuple[int, ...] = (1, 3, 5),
    noise_rate: float = 0.05,
    runner: RunnerConfig | None = None,
) -> dict[int, LocatorPoint]:
    """Coverage/latency tradeoff: success under probe noise vs wall time.

    Reruns the sweep's *middle* fleet size under an explicit probe-noise
    fault plan while varying the probes-per-measurement budget.  A budget
    of 1 trusts every response (fast, noise-fragile); larger odd budgets
    take the median (slower, noise-robust).
    """
    n_hosts = config.fleet_sizes[len(config.fleet_sizes) // 2]
    specs = []
    for probes in probes_grid:
        params = _cell_params(config, n_hosts)
        params["probes_per_measure"] = probes
        params["probe_noise_rate"] = noise_rate
        specs.extend(
            CellSpec(
                experiment="victim-locator",
                fn=_locator_cell,
                config=params,
                seed=config.base_seed + rep,
                label=f"probes-{probes}/rep{rep}",
            )
            for rep in range(config.repetitions)
        )
    results = run_cells(specs, runner)

    tradeoff: dict[int, LocatorPoint] = {}
    cursor = 0
    for probes in probes_grid:
        point = LocatorPoint(n_hosts=n_hosts)
        for result in results[cursor : cursor + config.repetitions]:
            value = result.value
            point.runs += 1
            point.hits += int(value["hit"])
            point.co_resident += int(value["co_resident"])
            point.rounds.append(value["rounds"])
            point.probes.append(value["probes"])
            point.candidates.append(value["candidates"])
            point.locate_seconds.append(value["locate_seconds"])
        cursor += config.repetitions
        tradeoff[probes] = point
    return tradeoff
